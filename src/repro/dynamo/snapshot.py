"""Persistent code-cache snapshots: §4.4.5 warm-start on disk.

"It is possible to eliminate the cache warm up time by saving the cache
state from a previous run, then restoring this state upon startup."
:meth:`~repro.dynamo.code_cache.CodeCache.snapshot` already carries that
state *within* a process (the ``reuse_cache`` knob); this module gives it
a durable form, so a freshly forked community worker — or tomorrow's
deployment — starts with the block map, the cached set, and the trace
tier's heat already in place instead of re-decoding the binary.

The format is canonical JSON (the same discipline as
:mod:`repro.community.wire`, plus sorted keys so equal states produce
byte-equal files), versioned three ways:

- ``schema``: the file layout; a reader rejects layouts it does not
  speak (:data:`SCHEMA_VERSION`).
- ``engine``: the execution-kernel generation the state was captured
  under (:data:`ENGINE_VERSION`); block/trace semantics may change
  across kernel rewrites, and a snapshot must never outlive them.
- ``binary``: the SHA-256 content digest of the image the state
  describes; a snapshot is meaningless against any other image.

Any mismatch raises :class:`~repro.errors.SnapshotError` — stale
snapshots are rejected, never misloaded.  Blocks are stored as
``[start, instruction count, truncated]`` and re-decoded from the
binary on load (the image is the authority; the snapshot only says
*which* blocks exist and in what discovery order), so a snapshot stays
small and can never smuggle foreign code into the cache.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.dynamo.blocks import BasicBlock, BlockMap
from repro.errors import InvalidInstruction, SnapshotError
from repro.vm.binary import Binary
from repro.vm.isa import INSTRUCTION_SIZE

#: File-layout version; bump on incompatible format changes.
#: v2 added the required ``edge_profile`` field (observed-run trace
#: heat: the per-entry successor histograms hottest-successor trace
#: selection reads), so warm-started learning members skip
#: re-formation.
SCHEMA_VERSION = 2

#: Execution-kernel generation; bump when block or trace semantics
#: change in ways that invalidate captured state.  ``-2``: trace paths
#: are selected hottest-successor (with monomorphic-stability gating
#: across indirect transfers), so paths recorded by a ``-1`` kernel may
#: pin a cold successor chain.
ENGINE_VERSION = "superblock-trace-2"


def snapshot_to_dict(cache, binary: Binary | None = None,
                     ledger_epoch: int | None = None) -> dict:
    """Serialise *cache* (a :class:`CodeCache`) plus the binary's trace
    heat into the versioned snapshot payload.

    ``ledger_epoch`` optionally stamps the community patch-ledger epoch
    the snapshot was taken at (a community server folding state into
    the shared warm-start file records how current it is; a rejoining
    member can tell which deltas a warm start already covers).  The
    field is *omitted* when None, so standalone snapshots stay
    byte-identical to earlier kernels'.
    """
    if binary is None:
        binary = cache.block_map.binary
    block_map = cache.block_map
    blocks = [[block.start, len(block.instructions),
               bool(block.truncated)]
              for block in block_map.blocks.values()]
    profile = binary._trace_profile or {}
    paths = binary._trace_paths or {}
    edges = binary._edge_profile or {}
    if ledger_epoch is not None:
        if isinstance(ledger_epoch, bool) or \
                not isinstance(ledger_epoch, int) or ledger_epoch < 0:
            raise SnapshotError(
                f"ledger_epoch must be a non-negative integer, "
                f"got {ledger_epoch!r}")
        extra = {"ledger_epoch": ledger_epoch}
    else:
        extra = {}
    return {
        **extra,
        "schema": SCHEMA_VERSION,
        "engine": ENGINE_VERSION,
        "binary": binary.content_digest(),
        "blocks": blocks,
        "cached": sorted(cache._cached),
        "trace_profile": {str(pc): count
                          for pc, count in sorted(profile.items())},
        "trace_paths": {str(pc): (list(path) if path else False)
                        for pc, path in sorted(paths.items())},
        "edge_profile": {str(pc): {str(successor): count
                                   for successor, count
                                   in sorted(successors.items())}
                         for pc, successors in sorted(edges.items())},
    }


def snapshot_from_dict(payload: dict, binary: Binary
                       ) -> tuple[BlockMap, frozenset[int]]:
    """Validate *payload* against *binary* and rebuild the cache state.

    Returns the ``(block map, cached set)`` pair
    :meth:`CodeCache.restore` accepts.  Also seeds the binary's shared
    trace profile and paths (without overwriting heat the process has
    already accumulated), so the trace tier warm-starts too.
    """
    try:
        schema = payload["schema"]
        engine = payload["engine"]
        digest = payload["binary"]
        blocks = payload["blocks"]
        cached = payload["cached"]
        profile = payload["trace_profile"]
        paths = payload["trace_paths"]
        edges = payload["edge_profile"]
    except (TypeError, KeyError) as error:
        raise SnapshotError(f"snapshot is missing field {error}") \
            from error
    epoch = payload.get("ledger_epoch", 0)
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise SnapshotError(
            f"snapshot ledger_epoch {epoch!r} is not a non-negative "
            f"integer")
    if schema != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema {schema!r} is not the supported "
            f"{SCHEMA_VERSION!r}")
    if engine != ENGINE_VERSION:
        raise SnapshotError(
            f"snapshot was captured under engine {engine!r}; this "
            f"kernel is {ENGINE_VERSION!r}")
    if digest != binary.content_digest():
        raise SnapshotError(
            "snapshot was captured from a different binary "
            f"(digest {digest[:12]}… vs {binary.content_digest()[:12]}…)")

    block_map = BlockMap(binary)
    try:
        for start, count, truncated in blocks:
            instructions = [
                (pc, binary.decode_at(pc))
                for pc in range(start, start + count * INSTRUCTION_SIZE,
                                INSTRUCTION_SIZE)]
            block = BasicBlock(start=start, instructions=instructions,
                               truncated=bool(truncated))
            block_map.blocks[start] = block
            for pc, _ in instructions:
                block_map._instruction_to_block.setdefault(pc, start)
        cached_set = frozenset(int(start) for start in cached)
        if binary._trace_profile is None:
            binary._trace_profile = {}
        if binary._trace_paths is None:
            binary._trace_paths = {}
        for pc, heat in profile.items():
            binary._trace_profile.setdefault(int(pc), int(heat))
        for pc, path in paths.items():
            binary._trace_paths.setdefault(
                int(pc), tuple(path) if path else False)
        if binary._edge_profile is None:
            binary._edge_profile = {}
        for pc, successors in edges.items():
            binary._edge_profile.setdefault(
                int(pc), {int(successor): int(count)
                          for successor, count in successors.items()})
    except (TypeError, ValueError, KeyError,
            InvalidInstruction) as error:
        # InvalidInstruction covers a digest-valid file whose block
        # entries point outside (or misalign within) the image — still
        # a snapshot problem, never a crash.
        raise SnapshotError(f"malformed snapshot content: {error}") \
            from error
    unknown = cached_set - set(block_map.blocks)
    if unknown:
        raise SnapshotError(
            f"snapshot marks unknown blocks as cached: {sorted(unknown)[:4]}")
    return block_map, cached_set


def encode_snapshot(cache, binary: Binary | None = None,
                    ledger_epoch: int | None = None) -> bytes:
    """Canonical snapshot bytes (sorted keys, no whitespace)."""
    return json.dumps(snapshot_to_dict(cache, binary,
                                       ledger_epoch=ledger_epoch),
                      sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def save_snapshot(path, cache, binary: Binary | None = None,
                  ledger_epoch: int | None = None) -> int:
    """Write *cache*'s state to *path*; returns the byte count.

    Crash-safe: the bytes land in a temporary file in the target
    directory first and are renamed into place with :func:`os.replace`,
    so a writer killed mid-save (a community member wedging or dying
    while refreshing the shared warm-start file) can never leave a
    truncated snapshot where other members expect a valid one — the
    prior snapshot survives untouched.
    """
    data = encode_snapshot(cache, binary, ledger_epoch=ledger_epoch)
    target = pathlib.Path(path)
    directory = target.parent if str(target.parent) else pathlib.Path(".")
    fd, temp_name = tempfile.mkstemp(dir=str(directory),
                                     prefix=target.name + ".",
                                     suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:  # pragma: no cover - already renamed/unlinked
            pass
        raise
    return len(data)


def snapshot_ledger_epoch(payload: dict) -> int:
    """The community ledger epoch a snapshot payload was stamped with
    (0 when the snapshot predates any community patch activity or was
    saved outside a community)."""
    epoch = payload.get("ledger_epoch", 0)
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise SnapshotError(
            f"snapshot ledger_epoch {epoch!r} is not a non-negative "
            f"integer")
    return epoch


def read_snapshot(path) -> dict:
    """The raw (unvalidated) snapshot payload at *path*."""
    try:
        raw = pathlib.Path(path).read_bytes()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot: {error}") from error
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotError(f"snapshot is not valid JSON: {error}") \
            from error
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload is not an object")
    return payload


def load_snapshot(path, binary: Binary
                  ) -> tuple[BlockMap, frozenset[int]]:
    """Read, validate, and rebuild the snapshot at *path*."""
    return snapshot_from_dict(read_snapshot(path), binary)
