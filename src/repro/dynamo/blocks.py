"""Basic block discovery over stripped binary images.

A basic block starts at a control-transfer target (or the entry point) and
extends to the first block-ending instruction (jump, branch, call, return,
halt).  Like DynamoRIO, discovery is purely dynamic: blocks are decoded the
first time control reaches them, so the system never needs static procedure
boundaries — which a stripped binary does not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidInstruction
from repro.vm.binary import Binary
from repro.vm.isa import (
    CONDITIONAL_JUMPS,
    INSTRUCTION_SIZE,
    Instruction,
    Opcode,
)


@dataclass
class BasicBlock:
    """A run of straight-line instructions ending in a control transfer.

    ``truncated`` marks a block that was cut short because it ran into
    another block's start; it implicitly falls through to ``end``.
    """

    start: int
    instructions: list[tuple[int, Instruction]] = field(default_factory=list)
    truncated: bool = False

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        last_pc, _ = self.instructions[-1]
        return last_pc + INSTRUCTION_SIZE

    @property
    def terminator(self) -> Instruction:
        """The block-ending instruction."""
        return self.instructions[-1][1]

    @property
    def terminator_pc(self) -> int:
        return self.instructions[-1][0]

    def addresses(self) -> list[int]:
        """Instruction addresses in this block, in order."""
        return [pc for pc, _ in self.instructions]

    def contains(self, pc: int) -> bool:
        """True if *pc* is one of this block's instruction addresses."""
        return self.start <= pc < self.end and (
            (pc - self.start) % INSTRUCTION_SIZE == 0)

    def successor_targets(self) -> list[int]:
        """Statically known successor addresses within the procedure.

        Calls are treated as falling through (the callee is a different
        procedure); indirect jumps and returns have no static successors.
        """
        if self.truncated:
            return [self.end]
        term = self.terminator
        term_pc = self.terminator_pc
        fallthrough = term_pc + INSTRUCTION_SIZE
        if term.opcode == Opcode.JMP:
            return [term.a]
        if term.opcode in CONDITIONAL_JUMPS:
            return [term.a, fallthrough]
        if term.opcode in (Opcode.CALL, Opcode.CALLR):
            return [fallthrough]
        # RET, JMPR, HALT: no intra-procedure successors.
        return []

    def call_target(self) -> int | None:
        """Direct call target, if the terminator is a direct call."""
        if self.terminator.opcode == Opcode.CALL:
            return self.terminator.a
        return None


def decode_block(binary: Binary, start: int,
                 stop_before: frozenset[int] | None = None) -> BasicBlock:
    """Decode the basic block beginning at *start*.

    ``stop_before`` lists addresses already known to start other blocks;
    decoding stops (with an implicit fall-through) when it would run into
    one, which keeps blocks non-overlapping once the block map is warm.
    """
    block = BasicBlock(start=start)
    pc = start
    while True:
        if stop_before and pc != start and pc in stop_before:
            # Fall-through into an existing block: end this block here;
            # it implicitly continues at `pc`.
            block.truncated = True
            break
        instruction = binary.decode_at(pc)
        block.instructions.append((pc, instruction))
        if instruction.is_block_ender():
            break
        pc += INSTRUCTION_SIZE
        if pc >= len(binary.code):
            raise InvalidInstruction(
                "block ran off the end of the code image", pc=pc)
    return block


class BlockMap:
    """All basic blocks discovered so far, keyed by start address.

    The map also answers the *membership* question Memory Firewall needs:
    "is this address a legitimate transfer target?" — legitimate targets
    are block starts and instruction addresses inside discovered blocks.
    """

    def __init__(self, binary: Binary):
        self.binary = binary
        self.blocks: dict[int, BasicBlock] = {}
        self._instruction_to_block: dict[int, int] = {}
        #: Memoised attach-time tables (see CodeCache._install_all /
        #: _anchor_all): (block count, cached set, payload) tuples,
        #: rebuilt whenever the keyed state moves.
        self._install_template: tuple | None = None
        self._anchor_template: tuple | None = None

    def __contains__(self, start: int) -> bool:
        return start in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def get(self, start: int) -> BasicBlock | None:
        return self.blocks.get(start)

    def discover(self, start: int) -> BasicBlock:
        """Return the block at *start*, decoding it on first request.

        Decoded blocks are shared per binary: successive instances
        replaying the same workload discover blocks in the same order
        with the same truncations, so after the first instance the
        per-launch decode cost collapses to a validation walk.  A cached
        block is reused only when this map's current stop set would
        reproduce it exactly; otherwise it is re-decoded (and the shared
        slot converges on the workload-typical variant).
        """
        block = self.blocks.get(start)
        if block is None:
            block = self._decode_shared(start)
            self.blocks[start] = block
            for pc in block.addresses():
                # First discovery wins; overlapping tails keep their
                # original owner, which is adequate for lookup purposes.
                self._instruction_to_block.setdefault(pc, start)
        return block

    def _decode_shared(self, start: int) -> BasicBlock:
        """The block at *start* under this map's stops, via the shared
        per-binary cache.  Cached blocks are treated as immutable."""
        shared = self.binary._block_cache
        if shared is None:
            shared = self.binary._block_cache = {}
        cached = shared.get(start)
        if cached is not None:
            # Reusable iff a fresh decode under the current stops would
            # reproduce it: no stop lands on an interior instruction,
            # and a truncated block's cut point is still a stop.
            stops = self.blocks
            if not any(pc != start and pc in stops
                       for pc, _ in cached.instructions) and \
                    (not cached.truncated or cached.end in stops):
                return cached
        block = decode_block(self.binary, start,
                             stop_before=frozenset(self.blocks))
        shared[start] = block
        return block

    def block_of(self, pc: int) -> BasicBlock | None:
        """The block whose instruction list contains *pc*, if known."""
        start = self._instruction_to_block.get(pc)
        if start is None:
            return None
        return self.blocks[start]

    def known_instruction(self, pc: int) -> bool:
        """True if *pc* is an instruction address in a discovered block."""
        return pc in self._instruction_to_block
