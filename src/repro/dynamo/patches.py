"""Runtime patches: the unit of intervention in the reproduction.

A :class:`Patch` attaches behaviour to one instruction address in a running
application.  ClearView builds three families on top of this primitive:
invariant-*check* patches (observe and report), invariant-*enforcement*
patches (mutate state or redirect control when the invariant is violated),
and auxiliary value-capture patches (store a first variable's value for a
later two-variable check, §2.4.2).

The :class:`PatchManager` is the Determina patch-management analogue: it
applies and removes patches to and from a *running* CPU without restarts.
It is a *pc-anchored* execution hook: instead of being consulted before
and after every instruction, it registers each patched address on the
:class:`~repro.vm.hooks.HookBus`, so patch dispatch is O(1) at anchor pcs
and completely free everywhere else.  Applying or removing a patch ejects
the owning block from the code cache, mirroring how Determina
re-materialises patched blocks.
"""

from __future__ import annotations

import itertools
import typing
from dataclasses import dataclass, field

from repro.errors import PatchError
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook
from repro.vm.isa import Instruction

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.dynamo.code_cache import CodeCache

_patch_ids = itertools.count(1)

#: Post-deployment surveillance window (§2.6 continued after deployment):
#: a terminal event — crash, detector firing, deadline expiry — is
#: attributed to a patch only if the patch's anchor executed within this
#: many instructions of the end of the run.
PROXIMITY_WINDOW = 50


@dataclass
class Patch:
    """Base patch: behaviour bound to one instruction address.

    Subclasses override :meth:`execute`.  The return value, if not None,
    replaces the program counter — the patched instruction is *skipped*
    and control resumes at the returned address (used by skip-call and
    return-from-procedure repairs).
    """

    pc: int
    #: Identifies the failure this patch was generated in response to.
    #: All ClearView bookkeeping is per-failure (§3.2, "Multiple
    #: Concurrent Failures").
    failure_id: str = ""
    patch_id: int = field(default_factory=lambda: next(_patch_ids))
    description: str = ""
    #: "before" runs ahead of the instruction (and may skip it by
    #: redirecting); "after" runs once its effects are applied — required
    #: for patches over values the instruction itself computes.
    when: str = "before"

    def execute(self, cpu: CPU, instruction: Instruction) -> int | None:
        """Run the patch body just before *instruction*. May redirect."""
        raise NotImplementedError

    def register_writes(self) -> frozenset[int]:
        """Registers this patch may write when it fires.

        The static vetter's clobber rule checks these against liveness
        at the anchor; subclasses that mutate register state override.
        """
        return frozenset()


@dataclass
class JumpPatch(Patch):
    """Unconditionally redirect control from the anchor to ``target``.

    A generic control-transfer primitive: the anchored instruction is
    skipped and execution resumes at ``target``.  ``target == pc`` spins
    forever — the adversarial loop-forever repair the chaos harness uses
    to exercise hang containment.
    """

    target: int = 0

    def execute(self, cpu: CPU, instruction: Instruction) -> int | None:
        return self.target


@dataclass
class PokePatch(Patch):
    """Write ``value`` into guest memory at ``address`` when executed.

    A generic state-mutation primitive; the chaos harness uses it as the
    memory-corrupting adversarial repair.  The write goes through the
    patch (trusted instrumentation) path, so corruption manifests later
    as guest misbehaviour rather than at the write itself.
    """

    address: int = 0
    value: int = 0

    def execute(self, cpu: CPU, instruction: Instruction) -> int | None:
        cpu.memory.write_word(self.address, self.value)
        return None


class PatchManager(ExecutionHook):
    """Applies/removes patches to a running application.

    One manager is attached per CPU (per application instance).  Multiple
    patches may target the same address; they run in application order.

    The manager keeps the bus routing tables in sync with its patch set:
    the first patch at an address anchors it, removing the last one
    releases the anchor.  Patches applied before the manager is attached
    to a CPU are anchored at attach time.
    """

    pc_anchored = True

    def __init__(self, code_cache: "CodeCache | None" = None):
        self._by_pc: dict[int, list[Patch]] = {}
        self._after_by_pc: dict[int, list[Patch]] = {}
        self._applied: dict[int, Patch] = {}
        self.code_cache = code_cache
        self._bus = None
        #: Count of patch executions, for overhead accounting.
        self.executions = 0
        #: Step count (``cpu.steps``) at each patch's most recent
        #: execution, for post-deployment proximity attribution
        #: (:mod:`repro.dynamo.guardrails`).  Only touched at anchor
        #: pcs, so tracking is free everywhere else.
        self.last_executed_step: dict[int, int] = {}

    # -- bus wiring -----------------------------------------------------

    def bus_attached(self, bus) -> None:
        self._bus = bus
        for pc in self._by_pc:
            bus.anchor(self, pc, "before")
        for pc in self._after_by_pc:
            bus.anchor(self, pc, "after")

    def bus_detached(self, bus) -> None:
        for pc in self._by_pc:
            bus.unanchor(self, pc, "before")
        for pc in self._after_by_pc:
            bus.unanchor(self, pc, "after")
        self._bus = None

    # -- management api -------------------------------------------------

    def _table(self, patch: Patch) -> dict[int, list[Patch]]:
        return self._after_by_pc if patch.when == "after" else self._by_pc

    def _when(self, patch: Patch) -> str:
        return "after" if patch.when == "after" else "before"

    def apply(self, patch: Patch) -> None:
        """Install *patch* into the running application."""
        if patch.patch_id in self._applied:
            raise PatchError(f"patch {patch.patch_id} is already applied")
        sites = self._table(patch).setdefault(patch.pc, [])
        if not sites and self._bus is not None:
            self._bus.anchor(self, patch.pc, self._when(patch))
        sites.append(patch)
        self._applied[patch.patch_id] = patch
        self._eject(patch.pc)

    def remove(self, patch: Patch) -> None:
        """Remove *patch* from the running application."""
        found = self._applied.pop(patch.patch_id, None)
        if found is None:
            raise PatchError(f"patch {patch.patch_id} is not applied")
        table = self._table(patch)
        table[patch.pc].remove(patch)
        if not table[patch.pc]:
            del table[patch.pc]
            if self._bus is not None:
                self._bus.unanchor(self, patch.pc, self._when(patch))
        self._eject(patch.pc)

    def remove_all(self, predicate=None) -> int:
        """Remove all patches (matching *predicate* if given); return count."""
        victims = [patch for patch in self._applied.values()
                   if predicate is None or predicate(patch)]
        for patch in victims:
            self.remove(patch)
        return len(victims)

    def applied_patches(self) -> list[Patch]:
        """Snapshot of currently applied patches."""
        return list(self._applied.values())

    def executed_near(self, end_steps: int,
                      window: int = PROXIMITY_WINDOW) -> dict[int, int]:
        """Patches whose anchor executed within *window* steps of the end.

        Returns ``{patch_id: distance}`` where distance is how many
        instructions before ``end_steps`` the patch last executed —
        the raw material for post-deployment blame attribution.
        """
        near: dict[int, int] = {}
        for patch_id, step in self.last_executed_step.items():
            distance = end_steps - step
            if 0 <= distance <= window:
                near[patch_id] = distance
        return near

    def _eject(self, pc: int) -> None:
        if self.code_cache is not None:
            self.code_cache.eject_containing(pc)

    # -- hook dispatch ---------------------------------------------------

    def before_instruction(self, cpu: CPU, pc: int,
                           instruction: Instruction) -> int | None:
        patches = self._by_pc.get(pc)
        if not patches:
            return None
        redirect: int | None = None
        steps = cpu.steps
        for patch in list(patches):
            self.executions += 1
            self.last_executed_step[patch.patch_id] = steps
            result = patch.execute(cpu, instruction)
            if result is not None:
                redirect = result
        return redirect

    def after_instruction(self, cpu: CPU, pc: int,
                          instruction: Instruction) -> None:
        patches = self._after_by_pc.get(pc)
        if not patches:
            return
        steps = cpu.steps
        for patch in list(patches):
            self.executions += 1
            self.last_executed_step[patch.patch_id] = steps
            result = patch.execute(cpu, instruction)
            if result is not None:
                # The instruction has executed; redirecting means steering
                # the *next* fetch (used by return-from-procedure repairs
                # placed after computing instructions). Validated like
                # any dynamic transfer.
                from repro.vm.hooks import TransferKind
                cpu.pc = cpu._transfer(pc, TransferKind.PATCH, result)
