"""The code cache: DynamoRIO-style managed block execution.

All code conceptually executes out of the cache.  The first time control
reaches an address that is not cached, the block is decoded ("built"),
offered to every registered :class:`CachePlugin` for validation and
transformation, and then cached.  Ejecting a block forces it to be rebuilt
(and re-instrumented) the next time control reaches it — which is how
patches take effect in a running application without a restart.

The cache also charges a *warm-up cost* per block build, modelling the
dominant cost the paper reports in Table 3's replay columns (20-30 s of
cache warm-up per Firefox restart).  The cost is an instruction-count
surrogate: deterministic, hardware-independent, and visible to the
benchmark harness.
"""

from __future__ import annotations

from repro.dynamo.blocks import BasicBlock, BlockMap
from repro.vm.binary import Binary
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook
from repro.vm.isa import CONDITIONAL_JUMPS, INSTRUCTION_SIZE, Instruction

#: Synthetic work units charged per block build (cache warm-up model).
BLOCK_BUILD_COST = 25


class CachePlugin:
    """Validation/transformation hook invoked as blocks enter the cache."""

    def on_block_build(self, cache: "CodeCache",
                       block: BasicBlock) -> None:
        """Inspect or act on a block as it is inserted into the cache."""

    def on_block_eject(self, cache: "CodeCache",
                       block: BasicBlock) -> None:
        """Called when a block is removed from the cache."""

    def on_block_restore(self, cache: "CodeCache",
                         block: BasicBlock) -> None:
        """Called for each block adopted from a snapshot, in the
        original discovery order.

        Restores replay this instead of :meth:`on_block_build` —
        restored blocks are not rebuilds (no warm-up cost) but plugins
        tracking what the cache has *seen* (procedure discovery) still
        need the sequence.
        """


class CodeCache(ExecutionHook):
    """Tracks cached blocks and drives plugins; attaches to a CPU as a hook.

    Cache maintenance is *event routed* rather than per-instruction: the
    cache subscribes to ``on_transfer`` (every transfer target is a block
    entry) and anchors a ``before_instruction`` probe at each known block
    start (to catch ejected blocks reached by fall-through) and at each
    conditional branch's fall-through frontier (to catch straight-line
    execution entering undiscovered territory).  Inside a cached block,
    execution proceeds with no cache involvement at all — the
    DynamoRIO-style "executing out of the cache" fast case.

    Statistics:

    - ``builds``: number of block constructions (cache misses), including
      rebuilds after ejection.
    - ``warmup_cost``: accumulated synthetic build cost.
    """

    pc_anchored = True

    def __init__(self, binary: Binary):
        self.block_map = BlockMap(binary)
        self._cached: set[int] = set()
        self.plugins: list[CachePlugin] = []
        self.builds = 0
        self.ejections = 0
        self.warmup_cost = 0
        self.restored_blocks = 0
        self._bus = None
        self._anchored: set[int] = set()

    def add_plugin(self, plugin: CachePlugin) -> None:
        self.plugins.append(plugin)

    # -- bus wiring -------------------------------------------------------

    def bus_attached(self, bus) -> None:
        self._bus = bus
        self._anchored = set()
        self._anchor_all()
        self._install_all()

    def bus_detached(self, bus) -> None:
        for pc in self._anchored:
            bus.unanchor(self, pc, "before")
        # Withdraw every block this cache ever registered — including
        # ejected ones, whose registrations deliberately outlive the
        # ejection (see eject()).
        for block in self.block_map.blocks.values():
            bus.remove_block(block.instructions)
        self._anchored = set()
        self._bus = None

    def _install_all(self) -> None:
        """Register every cached block's instructions for superblock
        compilation (the CPU compiles pre-bound runs from them).

        The merged per-pc table is memoised on the block map (restored
        instances re-attach the same state every launch), so repeat
        launches pay one dict update instead of a per-block loop — a
        measurable share of §4.4.5 warm-start latency.
        """
        if self._bus is None:
            return
        block_map = self.block_map
        template = block_map._install_template
        if template is None or template[0] != len(block_map.blocks) or \
                template[1] != self._cached:
            entries: dict = {}
            for start in self._cached:
                block = block_map.get(start)
                if block is not None:
                    items = block.instructions
                    for index, (pc, _) in enumerate(items):
                        entries[pc] = (items, index)
            template = (len(block_map.blocks), set(self._cached),
                        entries)
            block_map._install_template = template
        self._bus.adopt_blocks(template[2])

    def _anchor_all(self) -> None:
        """(Re-)anchor the entry point and every known block.

        Like :meth:`_install_all`, the pc list is memoised on the block
        map keyed by the (blocks, cached) state it was derived from.
        """
        block_map = self.block_map
        template = block_map._anchor_template
        if template is None or template[0] != len(block_map.blocks) or \
                template[1] != self._cached:
            pcs: list[int] = []
            cached = self._cached
            entry_point = block_map.binary.entry_point
            if entry_point not in cached:
                pcs.append(entry_point)
            code_len = len(block_map.binary.code)
            for block in block_map.blocks.values():
                if block.start not in cached:
                    pcs.append(block.start)
                if block.truncated:
                    continue
                if block.terminator.opcode in CONDITIONAL_JUMPS:
                    frontier = block.end
                    if frontier < code_len and \
                            block_map.block_of(frontier) is None:
                        pcs.append(frontier)
            template = (len(block_map.blocks), set(cached),
                        tuple(dict.fromkeys(pcs)))
            block_map._anchor_template = template
        for pc in template[2]:
            self._anchor_pc(pc)

    def _anchor_pc(self, pc: int) -> None:
        if self._bus is not None and pc not in self._anchored:
            self._anchored.add(pc)
            self._bus.anchor(self, pc, "before")

    def _unanchor_pc(self, pc: int) -> None:
        if self._bus is not None and pc in self._anchored:
            self._anchored.discard(pc)
            self._bus.unanchor(self, pc, "before")

    def _anchor_block(self, block: BasicBlock) -> None:
        """Anchor *block*'s start while it needs a probe and, if it can
        fall through into undiscovered code, its fall-through frontier.

        A *live* cached block's head carries no anchor at all — the
        probe would be a no-op by construction, and an unanchored head
        lets the kernel enter the block's superblock run with nothing
        but dict misses on its path.  Ejection re-anchors the head
        (see :meth:`eject`), restoring the rebuild probe.
        """
        if block.start not in self._cached:
            self._anchor_pc(block.start)
        if block.truncated:
            return  # falls through into an existing block
        if block.terminator.opcode in CONDITIONAL_JUMPS:
            frontier = block.end
            if frontier < len(self.block_map.binary.code) and \
                    self.block_map.block_of(frontier) is None:
                self._anchor_pc(frontier)

    # -- cache operations -------------------------------------------------

    def ensure_cached(self, start: int) -> BasicBlock:
        """Return the cached block at *start*, building it if necessary.

        Materialised blocks are registered on the bus
        (:meth:`~repro.vm.hooks.HookBus.install_block`), which is what
        lets the CPU compile them into pre-bound superblock runs.
        """
        block = self.block_map.discover(start)
        if start not in self._cached:
            self._cached.add(start)
            self.builds += 1
            self.warmup_cost += BLOCK_BUILD_COST
            for plugin in self.plugins:
                plugin.on_block_build(self, block)
            if self._bus is not None:
                self._bus.install_block(block.instructions)
            # The head needs no probe while the block is live (a
            # frontier anchor from a predecessor may point here too).
            self._unanchor_pc(start)
        self._anchor_block(block)
        return block

    def eject(self, start: int) -> bool:
        """Remove the block starting at *start* from the cache.

        The block's bus registration is deliberately left in place: the
        registered instructions are immutable decodings of immutable
        code, so any superblock run compiled from them stays valid.  The
        re-materialisation obligations ride elsewhere — the anchored
        probe at the block head rebuilds (and re-instruments) the block
        on next entry, and the patch anchor that triggered the ejection
        bumped ``anchor_version``, which recompiles the affected runs
        split at the new anchor.
        """
        if start not in self._cached:
            return False
        self._cached.discard(start)
        self.ejections += 1
        # Restore the rebuild probe the live block did not need.
        self._anchor_pc(start)
        block = self.block_map.get(start)
        if block is not None:
            for plugin in self.plugins:
                plugin.on_block_eject(self, block)
        return True

    def eject_containing(self, pc: int) -> bool:
        """Eject whichever cached block contains instruction *pc*."""
        block = self.block_map.block_of(pc)
        if block is None:
            return False
        return self.eject(block.start)

    def is_cached(self, start: int) -> bool:
        return start in self._cached

    @property
    def cached_block_count(self) -> int:
        return len(self._cached)

    # -- warm-up elimination (§4.4.5) ---------------------------------------

    def snapshot(self) -> tuple[BlockMap, frozenset[int]]:
        """Capture the cache state for reuse by a future instance.

        §4.4.5: "It is possible to eliminate the cache warm up time by
        saving the cache state from a previous run, then restoring this
        state upon startup."
        """
        return (self.block_map, frozenset(self._cached))

    def restore(self, snapshot: tuple[BlockMap, frozenset[int]]) -> None:
        """Adopt a previous instance's cache state. Restored blocks do
        not count as builds and incur no warm-up cost; plugins receive
        :meth:`CachePlugin.on_block_restore` for each block in the
        original discovery order, so order-sensitive consumers
        (procedure discovery) end up in the same state a cold sequence
        of builds would have produced."""
        block_map, cached = snapshot
        self.block_map = block_map
        self._cached = set(cached)
        self.restored_blocks = len(cached)
        if self.plugins:
            for block in block_map.blocks.values():
                for plugin in self.plugins:
                    plugin.on_block_restore(self, block)
        if self._bus is not None:
            self._anchor_all()
            self._install_all()

    # -- hook dispatch ------------------------------------------------------

    def before_instruction(self, cpu: CPU, pc: int,
                           instruction: Instruction) -> int | None:
        """Anchored probe: fires only at block starts and frontiers."""
        if pc in self._cached:
            # Hot case: entering a live cached block; nothing to do.
            return None
        block = self.block_map.block_of(pc)
        if block is None:
            # Control arrived at an address no discovered block covers:
            # it is a new block head.
            self.ensure_cached(pc)
        elif pc == block.start and block.start not in self._cached:
            # Known head whose block was ejected: rebuild (and re-run
            # plugins, so fresh instrumentation/patches take effect).
            self.ensure_cached(pc)
        return None

    def on_transfer(self, cpu: CPU, pc: int, kind: str,
                    target: int) -> None:
        """Every control transfer enters a block; cache it on arrival.

        Guarded by the same validity condition Memory Firewall enforces:
        a target outside the code segment (or misaligned) is about to
        fault, so it must not be decoded into the block map.
        """
        if target in self._cached:
            # Hot case: transfer into a live cached block.
            return
        block = self.block_map.block_of(target)
        if block is None:
            if cpu.memory.in_code(target) and \
                    target % INSTRUCTION_SIZE == 0:
                self.ensure_cached(target)
        elif target == block.start and target not in self._cached:
            self.ensure_cached(target)
