"""The code cache: DynamoRIO-style managed block execution.

All code conceptually executes out of the cache.  The first time control
reaches an address that is not cached, the block is decoded ("built"),
offered to every registered :class:`CachePlugin` for validation and
transformation, and then cached.  Ejecting a block forces it to be rebuilt
(and re-instrumented) the next time control reaches it — which is how
patches take effect in a running application without a restart.

The cache also charges a *warm-up cost* per block build, modelling the
dominant cost the paper reports in Table 3's replay columns (20-30 s of
cache warm-up per Firefox restart).  The cost is an instruction-count
surrogate: deterministic, hardware-independent, and visible to the
benchmark harness.
"""

from __future__ import annotations

from repro.dynamo.blocks import BasicBlock, BlockMap
from repro.vm.binary import Binary
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook
from repro.vm.isa import Instruction

#: Synthetic work units charged per block build (cache warm-up model).
BLOCK_BUILD_COST = 25


class CachePlugin:
    """Validation/transformation hook invoked as blocks enter the cache."""

    def on_block_build(self, cache: "CodeCache",
                       block: BasicBlock) -> None:
        """Inspect or act on a block as it is inserted into the cache."""

    def on_block_eject(self, cache: "CodeCache",
                       block: BasicBlock) -> None:
        """Called when a block is removed from the cache."""


class CodeCache(ExecutionHook):
    """Tracks cached blocks and drives plugins; attaches to a CPU as a hook.

    Statistics:

    - ``builds``: number of block constructions (cache misses), including
      rebuilds after ejection.
    - ``warmup_cost``: accumulated synthetic build cost.
    """

    def __init__(self, binary: Binary):
        self.block_map = BlockMap(binary)
        self._cached: set[int] = set()
        self.plugins: list[CachePlugin] = []
        self.builds = 0
        self.ejections = 0
        self.warmup_cost = 0
        self.restored_blocks = 0

    def add_plugin(self, plugin: CachePlugin) -> None:
        self.plugins.append(plugin)

    # -- cache operations -------------------------------------------------

    def ensure_cached(self, start: int) -> BasicBlock:
        """Return the cached block at *start*, building it if necessary."""
        block = self.block_map.discover(start)
        if start not in self._cached:
            self._cached.add(start)
            self.builds += 1
            self.warmup_cost += BLOCK_BUILD_COST
            for plugin in self.plugins:
                plugin.on_block_build(self, block)
        return block

    def eject(self, start: int) -> bool:
        """Remove the block starting at *start* from the cache."""
        if start not in self._cached:
            return False
        self._cached.discard(start)
        self.ejections += 1
        block = self.block_map.get(start)
        if block is not None:
            for plugin in self.plugins:
                plugin.on_block_eject(self, block)
        return True

    def eject_containing(self, pc: int) -> bool:
        """Eject whichever cached block contains instruction *pc*."""
        block = self.block_map.block_of(pc)
        if block is None:
            return False
        return self.eject(block.start)

    def is_cached(self, start: int) -> bool:
        return start in self._cached

    @property
    def cached_block_count(self) -> int:
        return len(self._cached)

    # -- warm-up elimination (§4.4.5) ---------------------------------------

    def snapshot(self) -> tuple[BlockMap, frozenset[int]]:
        """Capture the cache state for reuse by a future instance.

        §4.4.5: "It is possible to eliminate the cache warm up time by
        saving the cache state from a previous run, then restoring this
        state upon startup."
        """
        return (self.block_map, frozenset(self._cached))

    def restore(self, snapshot: tuple[BlockMap, frozenset[int]]) -> None:
        """Adopt a previous instance's cache state. Restored blocks do
        not count as builds and incur no warm-up cost; plugins are not
        re-run for them (their instrumentation decisions were captured in
        the snapshot's block map)."""
        block_map, cached = snapshot
        self.block_map = block_map
        self._cached = set(cached)
        self.restored_blocks = len(cached)

    # -- hook dispatch ------------------------------------------------------

    def before_instruction(self, cpu: CPU, pc: int,
                           instruction: Instruction) -> int | None:
        block = self.block_map.block_of(pc)
        if block is None:
            # Control arrived at an address no discovered block covers:
            # it is a new block head.
            self.ensure_cached(pc)
        elif pc == block.start and block.start not in self._cached:
            # Known head whose block was ejected: rebuild (and re-run
            # plugins, so fresh instrumentation/patches take effect).
            self.ensure_cached(pc)
        return None
