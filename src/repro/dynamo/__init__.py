"""Managed program execution: code cache, patches, run classification."""

from repro.dynamo.blocks import BasicBlock, BlockMap, decode_block
from repro.dynamo.code_cache import BLOCK_BUILD_COST, CachePlugin, CodeCache
from repro.dynamo.execution import (
    MAX_INPUT_BYTES,
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
    RunResult,
)
from repro.dynamo.guardrails import PatchHealthLedger, PatchHealthRecord
from repro.dynamo.patches import (
    PROXIMITY_WINDOW,
    JumpPatch,
    Patch,
    PatchManager,
    PokePatch,
)
from repro.dynamo.snapshot import (
    ENGINE_VERSION,
    SCHEMA_VERSION,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "BasicBlock", "BlockMap", "decode_block",
    "BLOCK_BUILD_COST", "CachePlugin", "CodeCache",
    "MAX_INPUT_BYTES", "EnvironmentConfig", "ManagedEnvironment",
    "Outcome", "RunResult",
    "Patch", "PatchManager", "JumpPatch", "PokePatch",
    "PROXIMITY_WINDOW", "PatchHealthLedger", "PatchHealthRecord",
    "ENGINE_VERSION", "SCHEMA_VERSION", "load_snapshot", "save_snapshot",
]
