"""Learning harness: run workloads under tracing and produce a model.

Ties together the managed environment, dynamic procedure discovery, the
trace front end, and the inference engine.  This is the "normal
executions" phase of Figure 1: every run fed through here is presumed
error-free, and runs that do *not* complete normally are excluded from the
model's accounting (§3.1: "it is important to discard any invariants from
executions with errors" — callers supply clean learning inputs, and the
harness reports any run that failed so it can be investigated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
    RunResult,
)
from repro.learning.database import InvariantDatabase
from repro.learning.inference import InferenceEngine
from repro.learning.traces import TraceFrontEnd
from repro.vm.binary import Binary


@dataclass
class LearningResult:
    """Everything the learning phase produces."""

    database: InvariantDatabase
    procedures: ProcedureDatabase
    runs: list[RunResult] = field(default_factory=list)
    excluded_runs: int = 0
    observations: int = 0


def learn(binary: Binary, payloads: list[bytes],
          config: EnvironmentConfig | None = None,
          pair_scope: str = "block",
          deduplicate: bool = True,
          traced_procedures: set[int] | None = None,
          batched: bool = True) -> LearningResult:
    """Learn a model of *binary*'s normal behaviour from *payloads*.

    Each payload is one "normal execution" (e.g. one web page load).
    Runs that do not complete normally are counted in ``excluded_runs``.
    ``batched`` selects the kernel-level batched observation path (the
    default) or the per-instruction callback path; both produce the same
    database.
    """
    stripped = binary.stripped()
    procedures = ProcedureDatabase(stripped)
    engine = InferenceEngine(procedures, pair_scope=pair_scope,
                             deduplicate=deduplicate)
    environment = ManagedEnvironment(stripped,
                                     config or EnvironmentConfig.full())
    environment.cache_plugins.append(DiscoveryPlugin(procedures))
    front_end = TraceFrontEnd(engine, procedures,
                              traced_procedures=traced_procedures,
                              batched=batched)
    environment.extra_hooks.append(front_end)

    runs: list[RunResult] = []
    excluded = 0
    for payload in payloads:
        result = environment.run(payload)
        runs.append(result)
        if result.outcome is not Outcome.COMPLETED:
            excluded += 1
    return LearningResult(database=engine.finalize(),
                          procedures=procedures, runs=runs,
                          excluded_runs=excluded,
                          observations=engine.observations)
