"""Learning harness: run workloads under tracing and produce a model.

Ties together the managed environment, dynamic procedure discovery, the
trace front end, and the inference engine.  This is the "normal
executions" phase of Figure 1: every run fed through here is presumed
error-free, and runs that do *not* complete normally are excluded from the
model's accounting (§3.1: "it is important to discard any invariants from
executions with errors" — callers supply clean learning inputs, and the
harness reports any run that failed so it can be investigated).

With ``prune=True`` the harness first runs a *scout* pass of the same
workload without tracing (:mod:`repro.analysis.pruning`): the static
analyzer proves operand slots constant over the discovered CFG, those
pcs are removed from the extraction plan at the kernel level, and after
the learning runs the proved statistics are injected back into the
engine before finalize — same database, fewer records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
    RunResult,
)
from repro.learning.database import InvariantDatabase
from repro.learning.inference import InferenceEngine
from repro.learning.traces import TraceFrontEnd
from repro.vm.binary import Binary


@dataclass
class LearningResult:
    """Everything the learning phase produces."""

    database: InvariantDatabase
    procedures: ProcedureDatabase
    runs: list[RunResult] = field(default_factory=list)
    excluded_runs: int = 0
    observations: int = 0
    #: Instruction addresses the static pruner removed from the
    #: extraction plan (0 when pruning was off or proved nothing).
    pruned_pcs: int = 0


def learn(binary: Binary, payloads: list[bytes],
          config: EnvironmentConfig | None = None,
          pair_scope: str = "block",
          deduplicate: bool = True,
          traced_procedures: set[int] | None = None,
          batched: bool = True,
          prune: bool = False) -> LearningResult:
    """Learn a model of *binary*'s normal behaviour from *payloads*.

    Each payload is one "normal execution" (e.g. one web page load).
    Runs that do not complete normally are counted in ``excluded_runs``.
    ``batched`` selects the kernel-level batched observation path (the
    default) or the per-instruction callback path; both produce the same
    database.  ``prune`` enables static observation pruning (full-trace
    batched learning only — the injected pair statistics assume block
    pair scope and a whole-binary trace).
    """
    if prune and (pair_scope != "block" or not batched
                  or traced_procedures is not None):
        raise ValueError(
            "prune=True requires pair_scope='block', batched=True and "
            "full tracing (traced_procedures=None)")
    stripped = binary.stripped()

    plan = None
    if prune:
        from repro.analysis.pruning import scout_pruning_plan
        plan = scout_pruning_plan(stripped, payloads, config=config)

    procedures = ProcedureDatabase(stripped)
    engine = InferenceEngine(procedures, pair_scope=pair_scope,
                             deduplicate=deduplicate)
    environment = ManagedEnvironment(stripped,
                                     config or EnvironmentConfig.full())
    environment.cache_plugins.append(DiscoveryPlugin(procedures))
    front_end = TraceFrontEnd(
        engine, procedures, traced_procedures=traced_procedures,
        batched=batched,
        pruned_pcs=plan.pruned_pcs if plan is not None else frozenset())
    environment.extra_hooks.append(front_end)

    runs: list[RunResult] = []
    excluded = 0
    for payload in payloads:
        result = environment.run(payload)
        runs.append(result)
        if result.outcome is not Outcome.COMPLETED:
            excluded += 1
    if plan is not None:
        plan.establish(engine)
    return LearningResult(database=engine.finalize(),
                          procedures=procedures, runs=runs,
                          excluded_runs=excluded,
                          observations=engine.observations,
                          pruned_pcs=len(plan.pruned_pcs)
                          if plan is not None else 0)
