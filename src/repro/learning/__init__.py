"""Invariant learning: the Daikon analogue plus the paper's extensions."""

from repro.learning.database import InvariantDatabase
from repro.learning.harness import LearningResult, learn
from repro.learning.inference import InferenceEngine
from repro.learning.invariants import (
    ONE_OF_LIMIT,
    Invariant,
    LessThan,
    LowerBound,
    OneOf,
    SPOffset,
    invariant_from_dict,
)
from repro.learning.pointers import NON_POINTER_LIMIT, PointerClassifier
from repro.learning.quarantine import (
    QuarantineBuffer,
    incorporate_with_quarantine,
)
from repro.learning.staged import StagedLearner
from repro.learning.traces import TraceFrontEnd
from repro.learning.variables import (
    Variable,
    is_call_target,
    is_enforceable,
    writable_register,
)

__all__ = [
    "InvariantDatabase", "LearningResult", "learn", "InferenceEngine",
    "ONE_OF_LIMIT", "Invariant", "LessThan", "LowerBound", "OneOf",
    "SPOffset", "invariant_from_dict", "NON_POINTER_LIMIT",
    "PointerClassifier", "QuarantineBuffer", "StagedLearner",
    "TraceFrontEnd", "Variable", "incorporate_with_quarantine",
    "is_call_target",
    "is_enforceable", "writable_register",
]
