"""Delayed invariant incorporation (§3.1).

"It is also possible to apply more sophisticated strategies, for example
delaying the incorporation of newly learned invariants for a period of
time long enough to make any undesirable effects of the execution
apparent.  Only after the period has expired with no observed
undesirable effects would the system use the invariants to update the
centralized invariant database."

The :class:`QuarantineBuffer` implements that policy for a community
server: uploaded databases sit in quarantine for a configurable number
of clean ticks (a tick being whatever heartbeat the deployment uses —
runs, minutes, upload rounds).  An undesirable event reported during the
window discards every upload still in quarantine, on the theory that the
executions that produced them may themselves have been erroneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.learning.database import InvariantDatabase


@dataclass
class _Pending:
    database: InvariantDatabase
    source: str
    remaining_ticks: int


@dataclass
class QuarantineBuffer:
    """Holds uploaded invariant databases until they age out clean.

    Parameters
    ----------
    quarantine_ticks:
        Clean ticks an upload must survive before release.
    """

    quarantine_ticks: int = 3
    _pending: list[_Pending] = field(default_factory=list)
    released: int = 0
    discarded: int = 0

    def submit(self, database: InvariantDatabase,
               source: str = "") -> None:
        """Accept an upload into quarantine."""
        self._pending.append(_Pending(
            database=database, source=source,
            remaining_ticks=self.quarantine_ticks))

    def tick(self) -> list[InvariantDatabase]:
        """One clean heartbeat: age every pending upload and return the
        databases whose quarantine expired (ready to merge centrally)."""
        ready: list[InvariantDatabase] = []
        keep: list[_Pending] = []
        for pending in self._pending:
            pending.remaining_ticks -= 1
            if pending.remaining_ticks <= 0:
                ready.append(pending.database)
                self.released += 1
            else:
                keep.append(pending)
        self._pending = keep
        return ready

    def report_undesirable_event(self) -> int:
        """An error/failure surfaced during the window: discard every
        upload still in quarantine. Returns the number discarded."""
        discarded = len(self._pending)
        self.discarded += discarded
        self._pending = []
        return discarded

    @property
    def pending_count(self) -> int:
        return len(self._pending)


def incorporate_with_quarantine(central: InvariantDatabase,
                                buffer: QuarantineBuffer
                                ) -> InvariantDatabase:
    """Merge every upload the buffer has released into *central*."""
    for database in buffer.tick():
        central = central.merge(database)
    return central
