"""The invariant database.

Holds the learned model of normal behaviour, indexed by the instruction at
which each invariant is checked.  Databases merge (§3.1): community nodes
learn locally and upload invariants — never raw traces — to the central
server, whose database must end up describing behaviour true across *all*
members.  Merge rules per kind:

- *one-of*: union of the value sets (an invariant must allow every value
  any member observed); dropped if the union exceeds the size limit;
- *lower-bound*: the minimum of the bounds;
- *less-than*: kept only if both members inferred it (a member that
  observed the instruction but did not infer the pair falsified it);
- *sp-offset*: kept only when offsets agree.

Invariants at instructions only one member executed survive unchanged —
absence of *coverage* is not falsification.
"""

from __future__ import annotations

from repro.learning.invariants import (
    Invariant,
    LessThan,
    LowerBound,
    OneOf,
    SPOffset,
    invariant_from_dict,
)
from repro.learning.variables import Variable


class InvariantDatabase:
    """Learned invariants, indexed by their check instruction."""

    def __init__(self):
        self._by_pc: dict[int, list[Invariant]] = {}
        #: How many samples each instruction address contributed. An
        #: address with samples was *covered* by learning.
        self._pc_samples: dict[int, int] = {}

    # -- construction -----------------------------------------------------

    def add(self, invariant: Invariant) -> None:
        self._by_pc.setdefault(invariant.check_pc, []).append(invariant)

    def record_samples(self, pc: int, samples: int) -> None:
        self._pc_samples[pc] = self._pc_samples.get(pc, 0) + samples

    # -- queries ------------------------------------------------------------

    def invariants_at(self, pc: int) -> list[Invariant]:
        """Invariants checked at instruction *pc*."""
        return list(self._by_pc.get(pc, ()))

    def all_invariants(self) -> list[Invariant]:
        return [invariant for invariants in self._by_pc.values()
                for invariant in invariants]

    def covered_pcs(self) -> set[int]:
        """Instruction addresses learning observed at least once."""
        return set(self._pc_samples)

    def samples_at(self, pc: int) -> int:
        return self._pc_samples.get(pc, 0)

    def __len__(self) -> int:
        return sum(len(invariants) for invariants in self._by_pc.values())

    def counts_by_kind(self) -> dict[str, int]:
        """Invariant counts keyed by kind name (for reports/benches)."""
        counts: dict[str, int] = {}
        for invariant in self.all_invariants():
            counts[invariant.kind] = counts.get(invariant.kind, 0) + 1
        return counts

    def sp_offset_at(self, pc: int) -> SPOffset | None:
        """The sp-offset invariant at *pc*, if one was learned."""
        for invariant in self._by_pc.get(pc, ()):
            if isinstance(invariant, SPOffset):
                return invariant
        return None

    # -- merging ------------------------------------------------------------

    def merge(self, other: "InvariantDatabase") -> "InvariantDatabase":
        """Combine two databases into one true across both (see module doc)."""
        merged = InvariantDatabase()
        pcs = set(self._by_pc) | set(other._by_pc)
        for pc in pcs:
            mine = self._by_pc.get(pc, [])
            theirs = other._by_pc.get(pc, [])
            covered_here = self.samples_at(pc) > 0
            covered_there = other.samples_at(pc) > 0
            if not (covered_here and covered_there):
                # Only one side has coverage: its invariants stand.
                for invariant in mine or theirs:
                    merged.add(invariant)
                continue
            for invariant in self._merge_lists(mine, theirs):
                merged.add(invariant)
        for pc in set(self._pc_samples) | set(other._pc_samples):
            merged.record_samples(
                pc, self.samples_at(pc) + other.samples_at(pc))
        return merged

    @staticmethod
    def _merge_lists(mine: list[Invariant],
                     theirs: list[Invariant]) -> list[Invariant]:
        def identity(invariant: Invariant):
            if isinstance(invariant, OneOf):
                return ("one-of", invariant.variable)
            if isinstance(invariant, LowerBound):
                return ("lower-bound", invariant.variable)
            if isinstance(invariant, LessThan):
                return ("less-than", invariant.left, invariant.right)
            if isinstance(invariant, SPOffset):
                return ("sp-offset", invariant.pc)
            return ("other", id(invariant))

        theirs_by_id = {identity(inv): inv for inv in theirs}
        result: list[Invariant] = []
        for invariant in mine:
            partner = theirs_by_id.get(identity(invariant))
            if partner is None:
                # The other member covered this instruction but did not
                # infer the invariant: it was falsified there. Drop it.
                continue
            if isinstance(invariant, OneOf):
                combined = invariant.merged_with(partner)  # type: ignore
                if combined is not None:
                    result.append(combined)
            elif isinstance(invariant, LowerBound):
                result.append(invariant.merged_with(partner))  # type: ignore
            elif isinstance(invariant, LessThan):
                result.append(invariant.merged_with(partner))  # type: ignore
            elif isinstance(invariant, SPOffset):
                if invariant.offset == partner.offset:  # type: ignore
                    result.append(invariant)
        return result

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able wire format (what community members upload)."""
        return {
            "invariants": [invariant.to_dict()
                           for invariant in self.all_invariants()],
            "samples": {str(pc): count
                        for pc, count in self._pc_samples.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvariantDatabase":
        database = cls()
        for item in payload.get("invariants", ()):
            database.add(invariant_from_dict(item))
        for pc_text, count in payload.get("samples", {}).items():
            database.record_samples(int(pc_text), count)
        return database
