"""The invariant inference engine (the Daikon core analogue).

The engine consumes per-instruction operand observations (produced by the
trace front end) and incrementally maintains candidate invariants:

- per-variable statistics drive *one-of* and *lower-bound* invariants;
- per-pair statistics drive *less-than* invariants, with candidate pairs
  scoped per §2.2.2 (variables computed at instructions that predominate
  the target instruction, in the same procedure) and optionally restricted
  to the same basic block (§2.4.1's optimization, the default);
- per-instruction stack-pointer deltas drive *sp-offset* invariants;
- the pointer classifier suppresses ordering invariants on pointers;
- a value-sequence fingerprint implements the §2.2.4 equal-variable
  suppression (reported to cut invariant counts by 2x).

``finalize()`` produces an :class:`~repro.learning.database.InvariantDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import (
    ONE_OF_LIMIT,
    Invariant,
    LessThan,
    LowerBound,
    OneOf,
    SPOffset,
)
from repro.learning.pointers import PointerClassifier
from repro.learning.variables import EXCLUDED_SLOTS, Variable
from repro.vm.hooks import OperandObservation
from repro.vm.isa import to_signed

#: Multiplier/offset for the order-sensitive value-sequence fingerprint.
_FNV_PRIME = 1099511628211
_FNV_OFFSET = 14695981039346656037
_FNV_MASK = (1 << 64) - 1


@dataclass
class _VariableStats:
    """Running statistics for one variable."""

    count: int = 0
    minimum: int = 0
    values: set[int] = field(default_factory=set)
    one_of_alive: bool = True
    fingerprint: int = _FNV_OFFSET

    def update(self, value: int) -> None:
        signed = to_signed(value)
        if self.count == 0:
            self.minimum = signed
        else:
            self.minimum = min(self.minimum, signed)
        self.count += 1
        if self.one_of_alive:
            self.values.add(value)
            if len(self.values) > ONE_OF_LIMIT:
                self.one_of_alive = False
                self.values.clear()
        self.fingerprint = ((self.fingerprint ^ (value & _FNV_MASK))
                            * _FNV_PRIME) & _FNV_MASK


@dataclass
class _PairStats:
    """Running statistics for one ordered candidate pair (left <= right)."""

    samples: int = 0
    falsified: bool = False

    def update(self, left: int, right: int) -> None:
        if self.falsified:
            return
        if to_signed(left) > to_signed(right):
            self.falsified = True
        else:
            self.samples += 1


@dataclass
class _SPStats:
    """Stack-pointer delta tracking for one instruction."""

    offset: int = 0
    constant: bool = True
    samples: int = 0

    def update(self, delta: int) -> None:
        if self.samples == 0:
            self.offset = delta
        elif self.offset != delta:
            self.constant = False
        self.samples += 1


class InferenceEngine:
    """Online invariant inference over operand observations.

    Parameters
    ----------
    procedures:
        The dynamically discovered procedure database; supplies the
        predominance relation that scopes candidate pairs.
    pair_scope:
        ``"block"`` (default) restricts two-variable invariants to pairs
        whose instructions share a basic block (the §2.4.1 optimization);
        ``"procedure"`` allows any predominating instruction;
        ``"none"`` disables two-variable inference entirely.
    deduplicate:
        Apply the §2.2.4 equal-variable suppression at finalize time.
    """

    def __init__(self, procedures: ProcedureDatabase,
                 pair_scope: str = "block", deduplicate: bool = True):
        if pair_scope not in ("block", "procedure", "none"):
            raise ValueError(f"bad pair_scope {pair_scope!r}")
        self.procedures = procedures
        self.pair_scope = pair_scope
        self.deduplicate = deduplicate
        self.pointer_classifier = PointerClassifier()
        self._variables: dict[Variable, _VariableStats] = {}
        self._last_values: dict[Variable, int] = {}
        self._pairs: dict[tuple[Variable, Variable], _PairStats] = {}
        self._sp: dict[int, _SPStats] = {}
        self._pc_samples: dict[int, int] = {}
        #: Variables present at each pc (discovered from observations).
        self._pc_variables: dict[int, list[Variable]] = {}
        #: Cache of candidate partner pcs per target pc.
        self._partner_cache: dict[int, list[int]] = {}
        self.observations = 0

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------

    def observe(self, observation: OperandObservation,
                procedure_entry: int | None,
                sp_entry: int | None) -> None:
        """Digest one instruction execution's operand observation."""
        self.observations += 1
        pc = observation.pc
        self._pc_samples[pc] = self._pc_samples.get(pc, 0) + 1

        for slot, value in observation.slots.items():
            if slot in EXCLUDED_SLOTS:
                continue
            variable = Variable(pc, slot)
            stats = self._variables.get(variable)
            if stats is None:
                stats = _VariableStats()
                self._variables[variable] = stats
                self._pc_variables.setdefault(pc, []).append(variable)
            stats.update(value)
            self.pointer_classifier.observe(variable, value)
            self._last_values[variable] = value

        if observation.computed and self.pair_scope != "none":
            self._update_pairs(pc, observation)

        if sp_entry is not None and procedure_entry is not None:
            esp = observation.slots.get("esp")
            if esp is not None:
                stats = self._sp.get(pc)
                if stats is None:
                    stats = _SPStats()
                    self._sp[pc] = stats
                stats.update(to_signed(esp - sp_entry))

    def _update_pairs(self, pc: int,
                      observation: OperandObservation) -> None:
        """Update less-than candidates pairing earlier variables with the
        variables this instruction computes."""
        partners = self._partner_pcs(pc)
        if not partners:
            return
        for slot in observation.computed:
            value = observation.slots.get(slot)
            if value is None:
                continue
            target = Variable(pc, slot)
            for partner_pc in partners:
                for other in self._pc_variables.get(partner_pc, ()):
                    if other == target:
                        continue
                    other_value = self._last_values.get(other)
                    if other_value is None:
                        continue
                    self._pair(other, target).update(other_value, value)
                    self._pair(target, other).update(value, other_value)

    def _pair(self, left: Variable, right: Variable) -> _PairStats:
        key = (left, right)
        stats = self._pairs.get(key)
        if stats is None:
            stats = _PairStats()
            self._pairs[key] = stats
        return stats

    def _partner_pcs(self, pc: int) -> list[int]:
        """Instruction addresses whose variables may pair with *pc*'s."""
        cached = self._partner_cache.get(pc)
        if cached is not None:
            return cached
        procedure = self.procedures.procedure_of(pc)
        partners: list[int] = []
        if procedure is not None:
            if self.pair_scope == "block":
                block = procedure.block_of(pc)
                if block is not None:
                    partners = [addr for addr in block.addresses()
                                if addr < pc]
            else:
                partners = [addr for addr in procedure.predominators(pc)
                            if addr < pc]
        self._partner_cache[pc] = partners
        return partners

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self) -> InvariantDatabase:
        """Build the invariant database from accumulated statistics."""
        duplicates = self._duplicate_variables() if self.deduplicate \
            else set()
        database = InvariantDatabase()

        for variable, stats in self._variables.items():
            if variable in duplicates or stats.count == 0:
                continue
            is_pointer = self.pointer_classifier.is_pointer(variable)
            # One-of invariants on raw data pointers (heap/vtable
            # addresses) are dropped: their value sets are an artifact of
            # allocator layout, and enforcing them yields repairs the
            # paper's system never tries. Indirect-transfer targets are
            # code addresses and classify as non-pointers, so the §2.5.1
            # call-site one-of invariants are unaffected.
            if stats.one_of_alive and stats.values and not is_pointer:
                database.add(OneOf(variable=variable,
                                   values=frozenset(stats.values),
                                   samples=stats.count))
            if not is_pointer:
                database.add(LowerBound(variable=variable,
                                        bound=stats.minimum,
                                        samples=stats.count))

        for (left, right), stats in self._pairs.items():
            if stats.falsified or stats.samples == 0:
                continue
            if left in duplicates or right in duplicates:
                continue
            if self.pointer_classifier.is_pointer(left) or \
                    self.pointer_classifier.is_pointer(right):
                continue
            database.add(LessThan(left=left, right=right,
                                  samples=stats.samples))

        for pc, stats in self._sp.items():
            if not stats.constant:
                continue
            procedure = self.procedures.procedure_of(pc)
            if procedure is None:
                continue
            database.add(SPOffset(pc=pc, procedure=procedure.entry,
                                  offset=stats.offset,
                                  samples=stats.samples))

        for pc, samples in self._pc_samples.items():
            database.record_samples(pc, samples)
        return database

    def _duplicate_variables(self) -> set[Variable]:
        """Variables whose full value sequence equals another variable's
        in the same procedure (§2.2.4): keep one representative per group.

        The representative is the earliest instruction's variable, except
        that an indirect-transfer target wins over data-flow copies of
        itself: the call-site variable supports the full §2.5.1 repair
        menu (call a known target / skip the call / return), matching the
        paper's account of one-of invariants "at the virtual function
        call site"."""
        groups: dict[tuple[int | None, int, int], list[Variable]] = {}
        for variable, stats in self._variables.items():
            procedure = self.procedures.procedure_of(variable.pc)
            entry = procedure.entry if procedure is not None else None
            key = (entry, stats.count, stats.fingerprint)
            groups.setdefault(key, []).append(variable)
        duplicates: set[Variable] = set()
        for members in groups.values():
            if len(members) <= 1:
                continue
            members.sort()
            keeper = members[0]
            for candidate in members:
                if self._is_transfer_target(candidate):
                    keeper = candidate
                    break
            duplicates.update(variable for variable in members
                              if variable is not keeper)
        return duplicates

    def _is_transfer_target(self, variable: Variable) -> bool:
        if variable.slot != "target":
            return False
        try:
            instruction = self.procedures.binary.decode_at(variable.pc)
        except Exception:
            return False
        from repro.vm.isa import Opcode
        return instruction.opcode in (Opcode.CALLR, Opcode.JMPR)
