"""The invariant inference engine (the Daikon core analogue).

The engine consumes per-instruction operand observations (produced by the
trace front end) and incrementally maintains candidate invariants:

- per-variable statistics drive *one-of* and *lower-bound* invariants;
- per-pair statistics drive *less-than* invariants, with candidate pairs
  scoped per §2.2.2 (variables computed at instructions that predominate
  the target instruction, in the same procedure) and optionally restricted
  to the same basic block (§2.4.1's optimization, the default);
- per-instruction stack-pointer deltas drive *sp-offset* invariants;
- the pointer classifier suppresses ordering invariants on pointers;
- a value-sequence fingerprint implements the §2.2.4 equal-variable
  suppression (reported to cut invariant counts by 2x).

The engine has two intake paths with identical semantics:

- :meth:`InferenceEngine.observe` digests one dict-shaped
  :class:`~repro.vm.hooks.OperandObservation` — the original
  per-instruction callback path;
- :meth:`InferenceEngine.observe_record` digests one flat raw snapshot
  (:mod:`repro.vm.observe` record) through a per-pc *compiled plan* that
  pre-binds every statistics object the record touches — no Variable
  construction, no hashing, no dict probes on the hot path.  Plans are
  invalidated (and lazily recompiled) whenever a new variable appears
  anywhere, since new variables join existing pcs' candidate-pair sets;
  records whose conditional-slot presence pattern deviates from the plan
  fall back to :meth:`observe`, which keeps both paths exactly
  state-equal.

``finalize()`` produces an :class:`~repro.learning.database.InvariantDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import (
    ONE_OF_LIMIT,
    Invariant,
    LessThan,
    LowerBound,
    OneOf,
    SPOffset,
)
from repro.learning.pointers import PointerClassifier, disqualifies_pointer
from repro.learning.variables import EXCLUDED_SLOTS, Variable
from repro.vm.hooks import OperandObservation
from repro.vm.isa import to_signed
from repro.vm.observe import observation_from_record, operand_layout

#: Multiplier/offset for the order-sensitive value-sequence fingerprint.
_FNV_PRIME = 1099511628211
_FNV_OFFSET = 14695981039346656037
_FNV_MASK = (1 << 64) - 1


@dataclass
class _VariableStats:
    """Running statistics for one variable."""

    count: int = 0
    minimum: int = 0
    values: set[int] = field(default_factory=set)
    one_of_alive: bool = True
    fingerprint: int = _FNV_OFFSET
    #: Most recent observed value, unsigned and signed — the datum
    #: candidate pairs read for the partner side.
    last: int | None = None
    last_signed: int = 0
    #: Fast-path mirror of ``PointerClassifier._not_pointer`` membership
    #: (the canonical set still drives :meth:`finalize`).
    not_pointer: bool = False

    def update(self, value: int) -> None:
        signed = to_signed(value)
        if self.count == 0:
            self.minimum = signed
        else:
            self.minimum = min(self.minimum, signed)
        self.count += 1
        if self.one_of_alive:
            self.values.add(value)
            if len(self.values) > ONE_OF_LIMIT:
                self.one_of_alive = False
                self.values.clear()
        self.fingerprint = ((self.fingerprint ^ (value & _FNV_MASK))
                            * _FNV_PRIME) & _FNV_MASK
        self.last = value
        self.last_signed = signed


class _PcPlan:
    """Compiled digest for one instruction address.

    ``slot_entries``/``pair_groups`` pre-bind the statistics objects a
    record at this pc updates; ``required``/``absent`` encode the
    conditional-slot presence pattern the plan was compiled for (records
    deviating from it take the dict-path fallback).  Indices are record
    positions (``record[0]`` is the pc, ``record[-1]`` the esp).
    """

    __slots__ = ("epoch", "slot_entries", "pair_groups", "required",
                 "absent")

    def __init__(self, epoch, slot_entries, pair_groups, required,
                 absent):
        self.epoch = epoch
        self.slot_entries = slot_entries
        self.pair_groups = pair_groups
        self.required = required
        self.absent = absent


@dataclass
class _PairStats:
    """Running statistics for one ordered candidate pair (left <= right)."""

    samples: int = 0
    falsified: bool = False

    def update(self, left: int, right: int) -> None:
        if self.falsified:
            return
        if to_signed(left) > to_signed(right):
            self.falsified = True
        else:
            self.samples += 1


@dataclass
class _SPStats:
    """Stack-pointer delta tracking for one instruction."""

    offset: int = 0
    constant: bool = True
    samples: int = 0

    def update(self, delta: int) -> None:
        if self.samples == 0:
            self.offset = delta
        elif self.offset != delta:
            self.constant = False
        self.samples += 1


class InferenceEngine:
    """Online invariant inference over operand observations.

    Parameters
    ----------
    procedures:
        The dynamically discovered procedure database; supplies the
        predominance relation that scopes candidate pairs.
    pair_scope:
        ``"block"`` (default) restricts two-variable invariants to pairs
        whose instructions share a basic block (the §2.4.1 optimization);
        ``"procedure"`` allows any predominating instruction;
        ``"none"`` disables two-variable inference entirely.
    deduplicate:
        Apply the §2.2.4 equal-variable suppression at finalize time.
    """

    def __init__(self, procedures: ProcedureDatabase,
                 pair_scope: str = "block", deduplicate: bool = True):
        if pair_scope not in ("block", "procedure", "none"):
            raise ValueError(f"bad pair_scope {pair_scope!r}")
        self.procedures = procedures
        self.pair_scope = pair_scope
        self.deduplicate = deduplicate
        self.pointer_classifier = PointerClassifier()
        self._variables: dict[Variable, _VariableStats] = {}
        self._pairs: dict[tuple[Variable, Variable], _PairStats] = {}
        self._sp: dict[int, _SPStats] = {}
        self._pc_samples: dict[int, int] = {}
        #: Variables present at each pc (discovered from observations).
        self._pc_variables: dict[int, list[Variable]] = {}
        #: Cache of candidate partner pcs per target pc.
        self._partner_cache: dict[int, list[int]] = {}
        #: Compiled per-pc digest plans for the batched intake path.
        self._plans: dict[int, _PcPlan] = {}
        #: Bumped whenever a new variable materialises anywhere: new
        #: variables join existing pcs' candidate-pair sets, so every
        #: plan pairing against them must recompile.
        self._epoch = 0
        self.observations = 0

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------

    def observe(self, observation: OperandObservation,
                procedure_entry: int | None,
                sp_entry: int | None) -> None:
        """Digest one instruction execution's operand observation."""
        self.observations += 1
        pc = observation.pc
        self._pc_samples[pc] = self._pc_samples.get(pc, 0) + 1

        for slot, value in observation.slots.items():
            if slot in EXCLUDED_SLOTS:
                continue
            variable = Variable(pc, slot)
            stats = self._variables.get(variable)
            if stats is None:
                stats = _VariableStats()
                self._variables[variable] = stats
                self._pc_variables.setdefault(pc, []).append(variable)
                self._epoch += 1
            stats.update(value)
            self.pointer_classifier.observe(variable, value)

        if observation.computed and self.pair_scope != "none":
            self._update_pairs(pc, observation)

        if sp_entry is not None and procedure_entry is not None:
            esp = observation.slots.get("esp")
            if esp is not None:
                stats = self._sp.get(pc)
                if stats is None:
                    stats = _SPStats()
                    self._sp[pc] = stats
                stats.update(to_signed(esp - sp_entry))

    def _update_pairs(self, pc: int,
                      observation: OperandObservation) -> None:
        """Update less-than candidates pairing earlier variables with the
        variables this instruction computes."""
        partners = self._partner_pcs(pc)
        if not partners:
            return
        for slot in observation.computed:
            value = observation.slots.get(slot)
            if value is None:
                continue
            target = Variable(pc, slot)
            for partner_pc in partners:
                for other in self._pc_variables.get(partner_pc, ()):
                    if other == target:
                        continue
                    other_value = self._variables[other].last
                    if other_value is None:
                        continue
                    self._pair(other, target).update(other_value, value)
                    self._pair(target, other).update(value, other_value)

    def _pair(self, left: Variable, right: Variable) -> _PairStats:
        key = (left, right)
        stats = self._pairs.get(key)
        if stats is None:
            stats = _PairStats()
            self._pairs[key] = stats
        return stats

    def _partner_pcs(self, pc: int) -> list[int]:
        """Instruction addresses whose variables may pair with *pc*'s."""
        cached = self._partner_cache.get(pc)
        if cached is not None:
            return cached
        procedure = self.procedures.procedure_of(pc)
        partners: list[int] = []
        if procedure is not None:
            if self.pair_scope == "block":
                block = procedure.block_of(pc)
                if block is not None:
                    partners = [addr for addr in block.addresses()
                                if addr < pc]
            else:
                partners = [addr for addr in procedure.predominators(pc)
                            if addr < pc]
        self._partner_cache[pc] = partners
        return partners

    # ------------------------------------------------------------------
    # Batched observation intake (compiled per-pc plans)
    # ------------------------------------------------------------------

    def observe_record(self, record: tuple,
                       procedure_entry: int | None,
                       sp_entry: int | None) -> None:
        """Digest one raw operand snapshot — :meth:`observe`'s compiled
        twin, state-equal by construction (and pinned by tests)."""
        pc = record[0]
        plan = self._plans.get(pc)
        if plan is None or plan.epoch != self._epoch:
            plan = self._compile_plan(pc, record)
            self._plans[pc] = plan
        for index in plan.required:
            if record[index] is None:
                return self._observe_fallback(record, procedure_entry,
                                              sp_entry)
        for index in plan.absent:
            if record[index] is not None:
                return self._observe_fallback(record, procedure_entry,
                                              sp_entry)
        self.observations += 1
        samples = self._pc_samples
        samples[pc] = samples.get(pc, 0) + 1

        classifier = self.pointer_classifier
        for index, variable, stats in plan.slot_entries:
            value = record[index]
            signed = value - 0x100000000 if value >= 0x80000000 else value
            if stats.count == 0:
                stats.minimum = signed
            elif signed < stats.minimum:
                stats.minimum = signed
            stats.count += 1
            if stats.one_of_alive:
                values = stats.values
                values.add(value)
                if len(values) > ONE_OF_LIMIT:
                    stats.one_of_alive = False
                    values.clear()
            stats.fingerprint = ((stats.fingerprint ^ value)
                                 * _FNV_PRIME) & _FNV_MASK
            if not stats.not_pointer and disqualifies_pointer(signed):
                stats.not_pointer = True
                classifier.disqualify(variable)
            stats.last = value
            stats.last_signed = signed

        for index, entries in plan.pair_groups:
            value = record[index]
            signed = value - 0x100000000 if value >= 0x80000000 else value
            for other_stats, forward, reverse in entries:
                other_signed = other_stats.last_signed
                if not forward.falsified:
                    if other_signed > signed:
                        forward.falsified = True
                    else:
                        forward.samples += 1
                if not reverse.falsified:
                    if signed > other_signed:
                        reverse.falsified = True
                    else:
                        reverse.samples += 1

        if sp_entry is not None and procedure_entry is not None:
            sp_stats = self._sp.get(pc)
            if sp_stats is None:
                sp_stats = _SPStats()
                self._sp[pc] = sp_stats
            delta = (record[-1] - sp_entry) & 0xFFFFFFFF
            if delta >= 0x80000000:
                delta -= 0x100000000
            if sp_stats.samples == 0:
                sp_stats.offset = delta
            elif sp_stats.offset != delta:
                sp_stats.constant = False
            sp_stats.samples += 1

    def _compile_plan(self, pc: int, record: tuple) -> _PcPlan:
        """Bind the statistics objects records at *pc* update.

        Variables materialise here exactly as they would on a first
        legacy observation (same creation, same classifier seeding); the
        triggering record is digested through the fresh plan right after,
        so statistics timing matches the dict path.
        """
        instruction = self.procedures.binary.decode_at(pc)
        names, computed = operand_layout(instruction)
        variables = self._variables
        slot_entries = []
        absent = []
        for position, name in enumerate(names):
            index = position + 1
            variable = Variable(pc, name)
            stats = variables.get(variable)
            if stats is None:
                if record[index] is None:
                    # Conditional slot not (yet) exhibited: no variable.
                    absent.append(index)
                    continue
                stats = _VariableStats()
                variables[variable] = stats
                self._pc_variables.setdefault(pc, []).append(variable)
                self._epoch += 1
                self.pointer_classifier.mark_seen(variable)
            slot_entries.append((index, variable, stats))

        pair_groups = []
        if computed and self.pair_scope != "none":
            partners = self._partner_pcs(pc)
            if partners:
                name_to_index = {name: position + 1
                                 for position, name in enumerate(names)}
                pc_variables = self._pc_variables
                for slot in computed:
                    target = Variable(pc, slot)
                    if variables.get(target) is None:
                        continue
                    entries = []
                    for partner_pc in partners:
                        for other in pc_variables.get(partner_pc, ()):
                            if other == target:
                                continue
                            entries.append((variables[other],
                                            self._pair(other, target),
                                            self._pair(target, other)))
                    if entries:
                        pair_groups.append((name_to_index[slot],
                                            tuple(entries)))

        return _PcPlan(epoch=self._epoch,
                       slot_entries=tuple(slot_entries),
                       pair_groups=tuple(pair_groups),
                       required=tuple(entry[0] for entry in slot_entries),
                       absent=tuple(absent))

    def _observe_fallback(self, record: tuple,
                          procedure_entry: int | None,
                          sp_entry: int | None) -> None:
        """Dict-path digestion for records off the compiled plan (a
        conditional slot appeared or vanished); any new variable bumps
        the epoch, recompiling the plan for the next record."""
        instruction = self.procedures.binary.decode_at(record[0])
        observation = observation_from_record(instruction, record)
        self.observe(observation, procedure_entry, sp_entry)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self) -> InvariantDatabase:
        """Build the invariant database from accumulated statistics."""
        duplicates = self._duplicate_variables() if self.deduplicate \
            else set()
        database = InvariantDatabase()

        for variable, stats in self._variables.items():
            if variable in duplicates or stats.count == 0:
                continue
            is_pointer = self.pointer_classifier.is_pointer(variable)
            # One-of invariants on raw data pointers (heap/vtable
            # addresses) are dropped: their value sets are an artifact of
            # allocator layout, and enforcing them yields repairs the
            # paper's system never tries. Indirect-transfer targets are
            # code addresses and classify as non-pointers, so the §2.5.1
            # call-site one-of invariants are unaffected.
            if stats.one_of_alive and stats.values and not is_pointer:
                database.add(OneOf(variable=variable,
                                   values=frozenset(stats.values),
                                   samples=stats.count))
            if not is_pointer:
                database.add(LowerBound(variable=variable,
                                        bound=stats.minimum,
                                        samples=stats.count))

        for (left, right), stats in self._pairs.items():
            if stats.falsified or stats.samples == 0:
                continue
            if left in duplicates or right in duplicates:
                continue
            if self.pointer_classifier.is_pointer(left) or \
                    self.pointer_classifier.is_pointer(right):
                continue
            database.add(LessThan(left=left, right=right,
                                  samples=stats.samples))

        for pc, stats in self._sp.items():
            if not stats.constant:
                continue
            procedure = self.procedures.procedure_of(pc)
            if procedure is None:
                continue
            database.add(SPOffset(pc=pc, procedure=procedure.entry,
                                  offset=stats.offset,
                                  samples=stats.samples))

        for pc, samples in self._pc_samples.items():
            database.record_samples(pc, samples)
        return database

    def _duplicate_variables(self) -> set[Variable]:
        """Variables whose full value sequence equals another variable's
        in the same procedure (§2.2.4): keep one representative per group.

        The representative is the earliest instruction's variable, except
        that an indirect-transfer target wins over data-flow copies of
        itself: the call-site variable supports the full §2.5.1 repair
        menu (call a known target / skip the call / return), matching the
        paper's account of one-of invariants "at the virtual function
        call site"."""
        groups: dict[tuple[int | None, int, int], list[Variable]] = {}
        for variable, stats in self._variables.items():
            procedure = self.procedures.procedure_of(variable.pc)
            entry = procedure.entry if procedure is not None else None
            key = (entry, stats.count, stats.fingerprint)
            groups.setdefault(key, []).append(variable)
        duplicates: set[Variable] = set()
        for members in groups.values():
            if len(members) <= 1:
                continue
            members.sort()
            keeper = members[0]
            for candidate in members:
                if self._is_transfer_target(candidate):
                    keeper = candidate
                    break
            duplicates.update(variable for variable in members
                              if variable is not keeper)
        return duplicates

    def _is_transfer_target(self, variable: Variable) -> bool:
        if variable.slot != "target":
            return False
        try:
            instruction = self.procedures.binary.decode_at(variable.pc)
        except Exception:
            return False
        from repro.vm.isa import Opcode
        return instruction.opcode in (Opcode.CALLR, Opcode.JMPR)
