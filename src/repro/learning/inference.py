"""The invariant inference engine (the Daikon core analogue).

The engine consumes per-instruction operand observations (produced by the
trace front end) and incrementally maintains candidate invariants:

- per-variable statistics drive *one-of* and *lower-bound* invariants;
- per-pair statistics drive *less-than* invariants, with candidate pairs
  scoped per §2.2.2 (variables computed at instructions that predominate
  the target instruction, in the same procedure) and optionally restricted
  to the same basic block (§2.4.1's optimization, the default);
- per-instruction stack-pointer deltas drive *sp-offset* invariants;
- the pointer classifier suppresses ordering invariants on pointers;
- a value-sequence fingerprint implements the §2.2.4 equal-variable
  suppression (reported to cut invariant counts by 2x).

The engine has two intake paths with identical semantics:

- :meth:`InferenceEngine.observe` digests one dict-shaped
  :class:`~repro.vm.hooks.OperandObservation` — the original
  per-instruction callback path;
- :meth:`InferenceEngine.observe_record` digests one flat raw snapshot
  (:mod:`repro.vm.observe` record) through a per-pc *compiled plan* that
  pre-binds every statistics object the record touches — no Variable
  construction, no hashing, no dict probes on the hot path.  A plan is
  invalidated (popped, its lazy counters settled) exactly when a new
  variable materialises at one of its partner pcs — it joins that plan's
  candidate-pair set — via a reverse watcher index rather than a global
  epoch, and recompiles on its next record; records whose
  conditional-slot presence pattern deviates from the plan fall back to
  :meth:`observe`, which keeps both paths exactly state-equal.  Only the
  slots :mod:`repro.vm.observe` can actually emit as ``None`` (a
  faulting load's value, value/target on an empty stack) carry presence
  checks — for every other instruction the plan's ``presence`` is None
  and the digest skips the test entirely.  Pair maintenance, the
  digest's dominant cost, runs over per-direction value vectors with a
  C-level ``max``/``min`` falsification test and lazy sample counters
  (see :class:`_PairGroup`).
- :meth:`InferenceEngine.observe_batch` is the batched front end's
  entry: the same compiled digest fused with the per-record front-end
  bookkeeping (activation markers, procedure attribution, the partial
  tracing filter) in a single loop with every engine attribute hoisted
  to a local — no per-record method call, no per-record ``self``
  traffic.

``finalize()`` produces an :class:`~repro.learning.database.InvariantDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import (
    ONE_OF_LIMIT,
    Invariant,
    LessThan,
    LowerBound,
    OneOf,
    SPOffset,
)
from repro.learning.pointers import PointerClassifier, disqualifies_pointer
from repro.learning.variables import EXCLUDED_SLOTS, Variable
from repro.vm.hooks import OperandObservation
from repro.vm.isa import Opcode, to_signed
from repro.vm.observe import observation_from_record, operand_layout

#: Multiplier/offset for the order-sensitive value-sequence fingerprint.
_FNV_PRIME = 1099511628211
_FNV_OFFSET = 14695981039346656037
_FNV_MASK = (1 << 64) - 1

#: The only slots an extractor record can carry as ``None`` (see
#: :mod:`repro.vm.observe`): a faulting load's value, the value/target
#: of a POP/RET on an empty stack.  Plans check presence for exactly
#: these — every other slot is unconditionally present by construction.
_CONDITIONAL_SLOTS = {
    Opcode.LOAD: ("value",), Opcode.LOADB: ("value",),
    Opcode.POP: ("value",), Opcode.RET: ("target",),
}

_UNSET = object()

#: C-level projection of a partner vector onto its current values (the
#: pair loops feed it straight into ``max``/``min`` with no Python-level
#: frame per element).
_LAST_SIGNED = attrgetter("last_signed")


@dataclass(slots=True)
class _VariableStats:
    """Running statistics for one variable."""

    count: int = 0
    minimum: int = 0
    values: set[int] = field(default_factory=set)
    one_of_alive: bool = True
    fingerprint: int = _FNV_OFFSET
    #: Most recent observed value, unsigned and signed — the datum
    #: candidate pairs read for the partner side.
    last: int | None = None
    last_signed: int = 0
    #: Fast-path mirror of ``PointerClassifier._not_pointer`` membership
    #: (the canonical set still drives :meth:`finalize`).
    not_pointer: bool = False
    #: The variable these statistics belong to (set at creation); lets
    #: compiled plans carry bare ``(index, stats)`` slot entries.
    variable: "Variable | None" = None

    def update(self, value: int) -> None:
        signed = to_signed(value)
        if self.count == 0:
            self.minimum = signed
        else:
            self.minimum = min(self.minimum, signed)
        self.count += 1
        if self.one_of_alive:
            self.values.add(value)
            if len(self.values) > ONE_OF_LIMIT:
                self.one_of_alive = False
                self.values.clear()
        self.fingerprint = ((self.fingerprint ^ (value & _FNV_MASK))
                            * _FNV_PRIME) & _FNV_MASK
        self.last = value
        self.last_signed = signed


class _PairGroup:
    """Alive less-than candidates for one computed slot of one plan.

    The digest loop's dominant cost is pair maintenance, so the alive
    pairs are kept as *aligned value vectors* per direction: a record's
    value falsifies some forward pair (partner <= target) iff the max
    of the partners' current values exceeds it, and some reverse pair
    (target <= partner) iff the min falls below it — one C-level
    ``max``/``min`` over ``map(attrgetter, ...)`` instead of a Python
    branch per pair.  ``target`` is the computed slot's own statistics
    object: the slot loop runs first, so its ``last_signed`` *is* this
    record's value, already sign-converted.  The common
    no-falsification outcome then costs a single lazy counter bump
    (``fwd_count``/``rev_count``), folded into each alive pair's
    ``samples`` at materialization; the rare falsifying record walks
    the vectors, settles the falsified pairs, and compacts the
    survivors.  Dead directions leave their vector entirely, so
    long-falsified pairs cost nothing per record.
    """

    __slots__ = ("target", "fwd_stats", "fwd_pairs", "fwd_count",
                 "rev_stats", "rev_pairs", "rev_count")

    def __init__(self, target, fwd_stats, fwd_pairs, rev_stats,
                 rev_pairs):
        self.target = target
        self.fwd_stats = fwd_stats
        self.fwd_pairs = fwd_pairs
        self.fwd_count = 0
        self.rev_stats = rev_stats
        self.rev_pairs = rev_pairs
        self.rev_count = 0


class _PcPlan:
    """Compiled digest for one instruction address.

    ``slot_entries``/``pair_groups`` pre-bind the statistics objects a
    record at this pc updates; ``presence`` encodes the
    conditional-slot pattern the plan was compiled for as a
    ``(required indexes, absent indexes)`` pair over the slots that can
    actually be ``None`` (records deviating from it take the dict-path
    fallback) — or ``None`` when the instruction has no conditional
    slots, which skips the test entirely.  Indices are record positions
    (``record[0]`` is the pc, ``record[-1]`` the esp).  ``samples`` and
    the pair groups' counters accumulate lazily and are folded into the
    engine's canonical state by
    :meth:`InferenceEngine._materialize_plan` (on recompile, fallback,
    and finalize), so a plan must never be discarded unmaterialized.
    A plan stays installed until a variable materialises at one of its
    frozen partner pcs, which pops and settles it eagerly
    (:meth:`InferenceEngine._variable_created`).
    """

    __slots__ = ("pc", "slot_entries", "pair_groups",
                 "presence", "samples", "sp")

    def __init__(self, pc, slot_entries, pair_groups, presence):
        self.pc = pc
        self.slot_entries = slot_entries
        self.pair_groups = pair_groups
        self.presence = presence
        self.samples = 0
        self.sp = None


@dataclass(slots=True)
class _PairStats:
    """Running statistics for one ordered candidate pair (left <= right).

    On the compiled batch path ``samples`` may lag the true count: a
    plan's :class:`_PairGroup` counts non-falsifying co-observations
    lazily and folds them in when the pair falsifies, the plan
    recompiles, or the engine finalizes (see
    :meth:`InferenceEngine._materialize_plan`)."""

    samples: int = 0
    falsified: bool = False

    def update(self, left: int, right: int) -> None:
        if self.falsified:
            return
        if to_signed(left) > to_signed(right):
            self.falsified = True
        else:
            self.samples += 1


@dataclass(slots=True)
class _SPStats:
    """Stack-pointer delta tracking for one instruction."""

    offset: int = 0
    constant: bool = True
    samples: int = 0

    def update(self, delta: int) -> None:
        if self.samples == 0:
            self.offset = delta
        elif self.offset != delta:
            self.constant = False
        self.samples += 1


class InferenceEngine:
    """Online invariant inference over operand observations.

    Parameters
    ----------
    procedures:
        The dynamically discovered procedure database; supplies the
        predominance relation that scopes candidate pairs.
    pair_scope:
        ``"block"`` (default) restricts two-variable invariants to pairs
        whose instructions share a basic block (the §2.4.1 optimization);
        ``"procedure"`` allows any predominating instruction;
        ``"none"`` disables two-variable inference entirely.
    deduplicate:
        Apply the §2.2.4 equal-variable suppression at finalize time.
    """

    def __init__(self, procedures: ProcedureDatabase,
                 pair_scope: str = "block", deduplicate: bool = True):
        if pair_scope not in ("block", "procedure", "none"):
            raise ValueError(f"bad pair_scope {pair_scope!r}")
        self.procedures = procedures
        self.pair_scope = pair_scope
        self.deduplicate = deduplicate
        self.pointer_classifier = PointerClassifier()
        self._variables: dict[Variable, _VariableStats] = {}
        self._pairs: dict[tuple[Variable, Variable], _PairStats] = {}
        self._sp: dict[int, _SPStats] = {}
        self._pc_samples: dict[int, int] = {}
        #: Variables present at each pc (discovered from observations).
        self._pc_variables: dict[int, list[Variable]] = {}
        #: Cache of candidate partner pcs per target pc.
        self._partner_cache: dict[int, list[int]] = {}
        #: Compiled per-pc digest plans for the batched intake path.
        self._plans: dict[int, _PcPlan] = {}
        #: Exact plan invalidation: ``_pair_watchers`` maps a partner
        #: pc to the plan pcs whose candidate-pair sets draw on it (the
        #: partner relation itself is frozen per pc, so the reverse
        #: index is too); a variable materialising at a pc pops exactly
        #: the watching plans (settling their lazy counters), which
        #: recompile on their next record instead of every plan
        #: everywhere recompiling.
        self._pair_watchers: dict[int, set[int]] = {}
        self.observations = 0

    def _variable_created(self, pc: int) -> None:
        """A new variable materialised at *pc*: plans pairing against
        this pc must recompile to include it in their candidate sets.
        They are popped (and their lazy counters settled) right here, so
        the record digest needs no per-record dirty check — a missing
        plan is the only invalidation signal."""
        watchers = self._pair_watchers.get(pc)
        if watchers:
            plans = self._plans
            for watcher_pc in watchers:
                plan = plans.pop(watcher_pc, None)
                if plan is not None:
                    self._materialize_plan(plan)

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------

    def observe(self, observation: OperandObservation,
                procedure_entry: int | None,
                sp_entry: int | None) -> None:
        """Digest one instruction execution's operand observation."""
        self.observations += 1
        pc = observation.pc
        self._pc_samples[pc] = self._pc_samples.get(pc, 0) + 1

        for slot, value in observation.slots.items():
            if slot in EXCLUDED_SLOTS:
                continue
            variable = Variable(pc, slot)
            stats = self._variables.get(variable)
            if stats is None:
                stats = _VariableStats()
                stats.variable = variable
                self._variables[variable] = stats
                self._pc_variables.setdefault(pc, []).append(variable)
                self._variable_created(pc)
            stats.update(value)
            self.pointer_classifier.observe(variable, value)

        if observation.computed and self.pair_scope != "none":
            self._update_pairs(pc, observation)

        if sp_entry is not None and procedure_entry is not None:
            esp = observation.slots.get("esp")
            if esp is not None:
                stats = self._sp.get(pc)
                if stats is None:
                    stats = _SPStats()
                    self._sp[pc] = stats
                stats.update(to_signed(esp - sp_entry))

    def _update_pairs(self, pc: int,
                      observation: OperandObservation) -> None:
        """Update less-than candidates pairing earlier variables with the
        variables this instruction computes."""
        partners = self._partner_pcs(pc)
        if not partners:
            return
        for slot in observation.computed:
            value = observation.slots.get(slot)
            if value is None:
                continue
            target = Variable(pc, slot)
            for partner_pc in partners:
                for other in self._pc_variables.get(partner_pc, ()):
                    if other == target:
                        continue
                    other_value = self._variables[other].last
                    if other_value is None:
                        continue
                    self._pair(other, target).update(other_value, value)
                    self._pair(target, other).update(value, other_value)

    def _pair(self, left: Variable, right: Variable) -> _PairStats:
        key = (left, right)
        stats = self._pairs.get(key)
        if stats is None:
            stats = _PairStats()
            self._pairs[key] = stats
        return stats

    def _partner_pcs(self, pc: int) -> list[int]:
        """Instruction addresses whose variables may pair with *pc*'s."""
        cached = self._partner_cache.get(pc)
        if cached is not None:
            return cached
        procedure = self.procedures.procedure_of(pc)
        partners: list[int] = []
        if procedure is not None:
            if self.pair_scope == "block":
                block = procedure.block_of(pc)
                if block is not None:
                    partners = [addr for addr in block.addresses()
                                if addr < pc]
            else:
                partners = [addr for addr in procedure.predominators(pc)
                            if addr < pc]
        self._partner_cache[pc] = partners
        return partners

    # ------------------------------------------------------------------
    # Batched observation intake (compiled per-pc plans)
    # ------------------------------------------------------------------

    def observe_record(self, record: tuple,
                       procedure_entry: int | None,
                       sp_entry: int | None) -> None:
        """Digest one raw operand snapshot — :meth:`observe`'s compiled
        twin, state-equal by construction (and pinned by tests)."""
        pc = record[0]
        plan = self._plans.get(pc)
        if plan is None:
            plan = self._compile_plan(pc, record)
            self._plans[pc] = plan
        presence = plan.presence
        if presence is not None:
            for index in presence[0]:
                if record[index] is None:
                    return self._observe_fallback(
                        record, procedure_entry, sp_entry)
            for index in presence[1]:
                if record[index] is not None:
                    return self._observe_fallback(
                        record, procedure_entry, sp_entry)
        self.observations += 1
        plan.samples += 1

        classifier = self.pointer_classifier
        for index, stats in plan.slot_entries:
            value = record[index]
            signed = value - 0x100000000 if value >= 0x80000000 else value
            if stats.count == 0:
                stats.minimum = signed
            elif signed < stats.minimum:
                stats.minimum = signed
            stats.count += 1
            if stats.one_of_alive:
                values = stats.values
                values.add(value)
                if len(values) > ONE_OF_LIMIT:
                    stats.one_of_alive = False
                    values.clear()
            stats.fingerprint = ((stats.fingerprint ^ value)
                                 * _FNV_PRIME) & _FNV_MASK
            if not stats.not_pointer and disqualifies_pointer(signed):
                stats.not_pointer = True
                classifier.disqualify(stats.variable)
            stats.last = value
            stats.last_signed = signed

        for group in plan.pair_groups:
            signed = group.target.last_signed
            stats_list = group.fwd_stats
            if stats_list:
                if max(map(_LAST_SIGNED, stats_list)) > signed:
                    self._falsify_forward(group, signed)
                else:
                    group.fwd_count += 1
            stats_list = group.rev_stats
            if stats_list:
                if min(map(_LAST_SIGNED, stats_list)) < signed:
                    self._falsify_reverse(group, signed)
                else:
                    group.rev_count += 1

        if sp_entry is not None and procedure_entry is not None:
            sp_stats = plan.sp
            if sp_stats is None:
                sp_stats = self._sp.get(pc)
                if sp_stats is None:
                    sp_stats = _SPStats()
                    self._sp[pc] = sp_stats
                plan.sp = sp_stats
            delta = (record[-1] - sp_entry) & 0xFFFFFFFF
            if delta >= 0x80000000:
                delta -= 0x100000000
            if sp_stats.samples == 0:
                sp_stats.offset = delta
            elif sp_stats.offset != delta:
                sp_stats.constant = False
            sp_stats.samples += 1

    def observe_batch(self, records: list, activations: list,
                      make_activation, entry_cache: dict,
                      procedure_of, traced_set) -> tuple[int, int]:
        """Digest one buffered stretch of raw snapshots, in order.

        This is :meth:`observe_record` fused with the batched front
        end's per-record bookkeeping — activation-marker replay
        (``record[0] is None``), procedure attribution through the front
        end's *entry_cache*, and the partial-tracing filter — in a
        single loop with every per-record attribute hoisted to a local.
        The caller owns *activations* (mutated in place, so buffer
        boundaries never lose the call shadow) and the cache; the return
        value is ``(traced, skipped)`` record counts for the front end's
        accounting.  State-equality with the per-record paths is pinned
        by the batched-vs-legacy equality tests.
        """
        plans = self._plans
        plans_get = plans.get
        compile_plan = self._compile_plan
        fallback = self._observe_fallback
        falsify_forward = self._falsify_forward
        falsify_reverse = self._falsify_reverse
        disqualify = self.pointer_classifier.disqualify
        sp_map = self._sp
        entry_cache_get = entry_cache.get
        unset = _UNSET
        one_of_limit = ONE_OF_LIMIT
        last_signed_of = _LAST_SIGNED
        top = activations[-1] if activations else None
        top_entry = top.entry if top is not None else None
        markers = 0
        skipped = 0
        fallbacks = 0
        for record in records:
            pc = record[0]
            if pc is None:
                # Activation marker: (None, target, esp) pushes, the
                # (None, None, 0) twin pops.
                markers += 1
                if record[1] is None:
                    if activations:
                        activations.pop()
                else:
                    activations.append(make_activation(record[1],
                                                       record[2]))
                top = activations[-1] if activations else None
                top_entry = top.entry if top is not None else None
                continue
            entry = entry_cache_get(pc, unset)
            if entry is unset:
                procedure = procedure_of(pc)
                entry = procedure.entry if procedure is not None \
                    else None
                entry_cache[pc] = entry
            if traced_set is not None and entry not in traced_set:
                skipped += 1
                continue
            plan = plans_get(pc)
            if plan is None:
                plan = compile_plan(pc, record)
                plans[pc] = plan
            presence = plan.presence
            if presence is not None:
                deviates = False
                for index in presence[0]:
                    if record[index] is None:
                        deviates = True
                        break
                if not deviates:
                    for index in presence[1]:
                        if record[index] is not None:
                            deviates = True
                            break
                if deviates:
                    fallbacks += 1
                    sp_entry = top.sp_entry if (
                        entry is not None and top_entry == entry) \
                        else None
                    fallback(record, entry, sp_entry)
                    continue
            plan.samples += 1

            for index, stats in plan.slot_entries:
                value = record[index]
                signed = value - 0x100000000 \
                    if value >= 0x80000000 else value
                if stats.count == 0:
                    stats.minimum = signed
                elif signed < stats.minimum:
                    stats.minimum = signed
                stats.count += 1
                if stats.one_of_alive:
                    values = stats.values
                    values.add(value)
                    if len(values) > one_of_limit:
                        stats.one_of_alive = False
                        values.clear()
                stats.fingerprint = ((stats.fingerprint ^ value)
                                     * _FNV_PRIME) & _FNV_MASK
                if not stats.not_pointer and (
                        signed < 0 or 1 <= signed <= 100_000):
                    # Inlined disqualifies_pointer (pinned equal by the
                    # pointer-classifier tests).
                    stats.not_pointer = True
                    disqualify(stats.variable)
                stats.last = value
                stats.last_signed = signed

            for group in plan.pair_groups:
                signed = group.target.last_signed
                stats_list = group.fwd_stats
                if stats_list:
                    if max(map(last_signed_of, stats_list)) > signed:
                        falsify_forward(group, signed)
                    else:
                        group.fwd_count += 1
                stats_list = group.rev_stats
                if stats_list:
                    if min(map(last_signed_of, stats_list)) < signed:
                        falsify_reverse(group, signed)
                    else:
                        group.rev_count += 1

            if top_entry == entry and entry is not None:
                sp_stats = plan.sp
                if sp_stats is None:
                    sp_stats = sp_map.get(pc)
                    if sp_stats is None:
                        sp_stats = _SPStats()
                        sp_map[pc] = sp_stats
                    plan.sp = sp_stats
                delta = (record[-1] - top.sp_entry) & 0xFFFFFFFF
                if delta >= 0x80000000:
                    delta -= 0x100000000
                if sp_stats.samples == 0:
                    sp_stats.offset = delta
                elif sp_stats.offset != delta:
                    sp_stats.constant = False
                sp_stats.samples += 1
        traced = len(records) - markers - skipped
        self.observations += traced - fallbacks
        return traced, skipped

    def _falsify_forward(self, group: _PairGroup, signed: int) -> None:
        """Settle the forward pairs this record falsifies and compact
        the survivors (who each gain this record as a sample)."""
        count = group.fwd_count
        keep_stats: list = []
        keep_pairs: list = []
        for stats, pair in zip(group.fwd_stats, group.fwd_pairs):
            if stats.last_signed > signed:
                pair.falsified = True
                pair.samples += count
            else:
                keep_stats.append(stats)
                keep_pairs.append(pair)
        group.fwd_stats = keep_stats
        group.fwd_pairs = keep_pairs
        group.fwd_count = count + 1

    def _falsify_reverse(self, group: _PairGroup, signed: int) -> None:
        count = group.rev_count
        keep_stats: list = []
        keep_pairs: list = []
        for stats, pair in zip(group.rev_stats, group.rev_pairs):
            if signed > stats.last_signed:
                pair.falsified = True
                pair.samples += count
            else:
                keep_stats.append(stats)
                keep_pairs.append(pair)
        group.rev_stats = keep_stats
        group.rev_pairs = keep_pairs
        group.rev_count = count + 1

    def _materialize_plan(self, plan: _PcPlan) -> None:
        """Fold a plan's lazy counters into the canonical engine state
        (idempotent: every counter resets as it lands).  Must run before
        a plan is replaced or abandoned, before the dict-path fallback
        touches its pc, and before finalization reads the statistics."""
        if plan.samples:
            samples = self._pc_samples
            pc = plan.pc
            samples[pc] = samples.get(pc, 0) + plan.samples
            plan.samples = 0
        for group in plan.pair_groups:
            count = group.fwd_count
            if count:
                for pair in group.fwd_pairs:
                    pair.samples += count
                group.fwd_count = 0
            count = group.rev_count
            if count:
                for pair in group.rev_pairs:
                    pair.samples += count
                group.rev_count = 0

    def _compile_plan(self, pc: int, record: tuple) -> _PcPlan:
        """Bind the statistics objects records at *pc* update.

        Variables materialise here exactly as they would on a first
        legacy observation (same creation, same classifier seeding); the
        triggering record is digested through the fresh plan right after,
        so statistics timing matches the dict path.  The plan being
        replaced settles its lazy counters first, and the fresh pair
        groups carry only directions still alive — already-falsified
        pairs are permanently inert, so they drop out of the hot loop.
        """
        old = self._plans.get(pc)
        if old is not None:
            self._materialize_plan(old)
        instruction = self.procedures.binary.decode_at(pc)
        names, computed = operand_layout(instruction)
        conditional = _CONDITIONAL_SLOTS.get(instruction.opcode, ())
        variables = self._variables
        slot_entries = []
        required = []
        absent = []
        for position, name in enumerate(names):
            index = position + 1
            variable = Variable(pc, name)
            stats = variables.get(variable)
            if stats is None:
                if record[index] is None:
                    # Conditional slot not (yet) exhibited: no variable.
                    absent.append(index)
                    continue
                stats = _VariableStats()
                stats.variable = variable
                variables[variable] = stats
                self._pc_variables.setdefault(pc, []).append(variable)
                self._variable_created(pc)
                self.pointer_classifier.mark_seen(variable)
            if name in conditional:
                required.append(index)
            slot_entries.append((index, stats))

        pair_groups = []
        if computed and self.pair_scope != "none":
            partners = self._partner_pcs(pc)
            if partners:
                watchers = self._pair_watchers
                for partner_pc in partners:
                    watching = watchers.get(partner_pc)
                    if watching is None:
                        watchers[partner_pc] = {pc}
                    else:
                        watching.add(pc)
                pc_variables = self._pc_variables
                for slot in computed:
                    target = Variable(pc, slot)
                    target_stats = variables.get(target)
                    if target_stats is None:
                        continue
                    fwd_stats: list = []
                    fwd_pairs: list = []
                    rev_stats: list = []
                    rev_pairs: list = []
                    for partner_pc in partners:
                        for other in pc_variables.get(partner_pc, ()):
                            if other == target:
                                continue
                            other_stats = variables[other]
                            forward = self._pair(other, target)
                            reverse = self._pair(target, other)
                            if not forward.falsified:
                                fwd_stats.append(other_stats)
                                fwd_pairs.append(forward)
                            if not reverse.falsified:
                                rev_stats.append(other_stats)
                                rev_pairs.append(reverse)
                    if fwd_stats or rev_stats:
                        pair_groups.append(_PairGroup(
                            target_stats, fwd_stats, fwd_pairs,
                            rev_stats, rev_pairs))

        presence = (tuple(required), tuple(absent)) \
            if (required or absent) else None
        return _PcPlan(pc=pc,
                       slot_entries=tuple(slot_entries),
                       pair_groups=tuple(pair_groups),
                       presence=presence)

    def _observe_fallback(self, record: tuple,
                          procedure_entry: int | None,
                          sp_entry: int | None) -> None:
        """Dict-path digestion for records off the compiled plan (a
        conditional slot appeared or vanished); any new variable pops
        the watching plans, and this pc recompiles on its next record.
        The deviating pc's plan settles its lazy counters and retires
        first: the dict path updates the canonical statistics directly,
        which would race an outstanding counter on the same pairs."""
        pc = record[0]
        plan = self._plans.pop(pc, None)
        if plan is not None:
            self._materialize_plan(plan)
        instruction = self.procedures.binary.decode_at(pc)
        observation = observation_from_record(instruction, record)
        self.observe(observation, procedure_entry, sp_entry)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self) -> InvariantDatabase:
        """Build the invariant database from accumulated statistics."""
        for plan in self._plans.values():
            self._materialize_plan(plan)
        duplicates = self._duplicate_variables() if self.deduplicate \
            else set()
        database = InvariantDatabase()

        for variable, stats in self._variables.items():
            if variable in duplicates or stats.count == 0:
                continue
            is_pointer = self.pointer_classifier.is_pointer(variable)
            # One-of invariants on raw data pointers (heap/vtable
            # addresses) are dropped: their value sets are an artifact of
            # allocator layout, and enforcing them yields repairs the
            # paper's system never tries. Indirect-transfer targets are
            # code addresses and classify as non-pointers, so the §2.5.1
            # call-site one-of invariants are unaffected.
            if stats.one_of_alive and stats.values and not is_pointer:
                database.add(OneOf(variable=variable,
                                   values=frozenset(stats.values),
                                   samples=stats.count))
            if not is_pointer:
                database.add(LowerBound(variable=variable,
                                        bound=stats.minimum,
                                        samples=stats.count))

        for (left, right), stats in self._pairs.items():
            if stats.falsified or stats.samples == 0:
                continue
            if left in duplicates or right in duplicates:
                continue
            if self.pointer_classifier.is_pointer(left) or \
                    self.pointer_classifier.is_pointer(right):
                continue
            database.add(LessThan(left=left, right=right,
                                  samples=stats.samples))

        for pc, stats in self._sp.items():
            if not stats.constant:
                continue
            procedure = self.procedures.procedure_of(pc)
            if procedure is None:
                continue
            database.add(SPOffset(pc=pc, procedure=procedure.entry,
                                  offset=stats.offset,
                                  samples=stats.samples))

        for pc, samples in self._pc_samples.items():
            database.record_samples(pc, samples)
        return database

    def _duplicate_variables(self) -> set[Variable]:
        """Variables whose full value sequence equals another variable's
        in the same procedure (§2.2.4): keep one representative per group.

        The representative is the earliest instruction's variable, except
        that an indirect-transfer target wins over data-flow copies of
        itself: the call-site variable supports the full §2.5.1 repair
        menu (call a known target / skip the call / return), matching the
        paper's account of one-of invariants "at the virtual function
        call site"."""
        groups: dict[tuple[int | None, int, int], list[Variable]] = {}
        for variable, stats in self._variables.items():
            procedure = self.procedures.procedure_of(variable.pc)
            entry = procedure.entry if procedure is not None else None
            key = (entry, stats.count, stats.fingerprint)
            groups.setdefault(key, []).append(variable)
        duplicates: set[Variable] = set()
        for members in groups.values():
            if len(members) <= 1:
                continue
            members.sort()
            keeper = members[0]
            for candidate in members:
                if self._is_transfer_target(candidate):
                    keeper = candidate
                    break
            duplicates.update(variable for variable in members
                              if variable is not keeper)
        return duplicates

    def _is_transfer_target(self, variable: Variable) -> bool:
        if variable.slot != "target":
            return False
        try:
            instruction = self.procedures.binary.decode_at(variable.pc)
        except Exception:
            return False
        from repro.vm.isa import Opcode
        return instruction.opcode in (Opcode.CALLR, Opcode.JMPR)
