"""Invariant templates: the model of normal behaviour.

The paper's repair machinery uses exactly three invariant kinds (§2.5) —
*one-of*, *lower-bound*, and *less-than* — plus the stack-pointer offset
invariants of §2.2.4 that repairs use to fix up ESP.  Each invariant is a
logical formula over :class:`~repro.learning.variables.Variable` values
that held on every observed sample during learning.

Values are 32-bit words; ordering comparisons are *signed* (the paper's
lower-bound/less-than rationale is about negative lengths and indexes,
which only make sense signed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.learning.variables import Variable
from repro.vm.isa import to_signed

#: Maximum distinct values a one-of invariant may hold before it is
#: abandoned (Daikon's value-set size limit).
ONE_OF_LIMIT = 8


@dataclass(frozen=True)
class Invariant:
    """Base invariant. Subclasses are immutable value objects."""

    #: Number of samples that confirmed this invariant during learning.
    samples: int = 0

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def variables(self) -> tuple[Variable, ...]:
        """Variables mentioned, in check order (auxiliary first)."""
        raise NotImplementedError

    @property
    def check_pc(self) -> int:
        """The instruction where this invariant is checked/enforced: the
        latest-to-execute of its variables' instructions (§2.5)."""
        return self.variables()[-1].pc

    def holds(self, values: dict[Variable, int]) -> bool:
        """Evaluate on concrete *values* (missing variable -> False)."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class OneOf(Invariant):
    """``v in {c1, ..., cn}`` — all values the variable ever took (§2.5.1)."""

    variable: Variable = field(default=Variable(0, "?"))
    values: frozenset[int] = frozenset()

    kind = "one-of"

    def variables(self) -> tuple[Variable, ...]:
        return (self.variable,)

    def holds(self, values: dict[Variable, int]) -> bool:
        value = values.get(self.variable)
        return value is not None and value in self.values

    def to_dict(self) -> dict:
        return {"kind": self.kind, "variable": str(self.variable),
                "values": sorted(self.values), "samples": self.samples}

    def pretty(self) -> str:
        options = ", ".join(str(v) for v in sorted(self.values))
        return f"{self.variable} in {{{options}}}"

    def merged_with(self, other: "OneOf") -> "OneOf | None":
        """Union of value sets; None if the union exceeds the limit."""
        union = self.values | other.values
        if len(union) > ONE_OF_LIMIT:
            return None
        return OneOf(variable=self.variable, values=union,
                     samples=self.samples + other.samples)


@dataclass(frozen=True)
class LowerBound(Invariant):
    """``c <= v`` (signed), where c is the minimum observed value (§2.5.2)."""

    variable: Variable = field(default=Variable(0, "?"))
    bound: int = 0

    kind = "lower-bound"

    def variables(self) -> tuple[Variable, ...]:
        return (self.variable,)

    def holds(self, values: dict[Variable, int]) -> bool:
        value = values.get(self.variable)
        return value is not None and to_signed(value) >= self.bound

    def to_dict(self) -> dict:
        return {"kind": self.kind, "variable": str(self.variable),
                "bound": self.bound, "samples": self.samples}

    def pretty(self) -> str:
        return f"{self.bound} <= {self.variable}"

    def merged_with(self, other: "LowerBound") -> "LowerBound":
        return LowerBound(variable=self.variable,
                          bound=min(self.bound, other.bound),
                          samples=self.samples + other.samples)


@dataclass(frozen=True)
class LessThan(Invariant):
    """``v1 <= v2`` (signed), relating two variables (§2.5.3).

    ``left`` executes at or before ``right``; the invariant is checked at
    ``right``'s instruction with an auxiliary capture of ``left``.
    """

    left: Variable = field(default=Variable(0, "?"))
    right: Variable = field(default=Variable(0, "?"))

    kind = "less-than"

    def variables(self) -> tuple[Variable, ...]:
        return (self.left, self.right)

    @property
    def check_pc(self) -> int:
        # Checked/enforced at the later-executing instruction (§2.4.2);
        # either side may be the later one.
        return max(self.left.pc, self.right.pc)

    def holds(self, values: dict[Variable, int]) -> bool:
        left = values.get(self.left)
        right = values.get(self.right)
        if left is None or right is None:
            return False
        return to_signed(left) <= to_signed(right)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "left": str(self.left),
                "right": str(self.right), "samples": self.samples}

    def pretty(self) -> str:
        return f"{self.left} <= {self.right}"

    def merged_with(self, other: "LessThan") -> "LessThan":
        return LessThan(left=self.left, right=self.right,
                        samples=self.samples + other.samples)


@dataclass(frozen=True)
class SPOffset(Invariant):
    """``sp_here = sp_entry + c`` — stack-pointer offset invariant (§2.2.4).

    Not used to generate repairs directly; return-from-procedure repairs
    consult it to restore ESP correctly.
    """

    pc: int = 0
    procedure: int = 0
    offset: int = 0

    kind = "sp-offset"

    def variables(self) -> tuple[Variable, ...]:
        return (Variable(self.pc, "esp"),)

    def holds(self, values: dict[Variable, int]) -> bool:
        # SP offsets are structural facts, not runtime-checkable predicates
        # in isolation (they need the entry SP); treat as vacuously true.
        return True

    def to_dict(self) -> dict:
        return {"kind": self.kind, "pc": self.pc,
                "procedure": self.procedure, "offset": self.offset,
                "samples": self.samples}

    def pretty(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        return (f"sp@{self.pc:#x} = sp@entry({self.procedure:#x}) "
                f"{sign} {abs(self.offset)}")


def invariant_from_dict(payload: dict) -> Invariant:
    """Deserialize an invariant (community wire format)."""
    kind = payload["kind"]
    samples = payload.get("samples", 0)
    if kind == "one-of":
        return OneOf(variable=Variable.parse(payload["variable"]),
                     values=frozenset(payload["values"]), samples=samples)
    if kind == "lower-bound":
        return LowerBound(variable=Variable.parse(payload["variable"]),
                          bound=payload["bound"], samples=samples)
    if kind == "less-than":
        return LessThan(left=Variable.parse(payload["left"]),
                        right=Variable.parse(payload["right"]),
                        samples=samples)
    if kind == "sp-offset":
        return SPOffset(pc=payload["pc"], procedure=payload["procedure"],
                        offset=payload["offset"], samples=samples)
    raise ValueError(f"unknown invariant kind {kind!r}")


def with_samples(invariant: Invariant, samples: int) -> Invariant:
    """Copy *invariant* with an updated sample count."""
    return replace(invariant, samples=samples)
