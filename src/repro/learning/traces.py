"""The trace front end (the "Daikon x86 front end" analogue, §2.2.1).

Attaches to a running application as an execution hook and feeds operand
observations to an :class:`~repro.learning.inference.InferenceEngine`
online.  The front end also tracks procedure activations (its own
lightweight call shadow) so the engine can compute stack-pointer offsets
relative to procedure entry.

Two intake modes, identical in what the engine learns:

- **batched** (the default): the front end subscribes as a
  ``lazy_operands`` hook.  The CPU snapshots raw operand tuples through
  compiled extractors (:mod:`repro.vm.observe`), buffers them, and
  delivers them in bulk when the buffer fills.  Activation transitions
  arrive *in-band* as markers interleaved with the observations
  (``record[0] is None``), so the batch replays the exact call/return
  sequence and every record digests under the activation it executed
  in — no per-transfer flush, and the eager ``on_transfer`` /
  ``on_return`` routes are suppressed entirely.  The front end's
  :meth:`observes` filter confines extraction to the traced procedures
  *at the kernel level*: an untraced instruction costs nothing at all,
  not even a skipped callback.
- **legacy** (``batched=False``): per-instruction ``on_operands``
  callbacks over dict-shaped observations — the original path, kept as
  the semantic reference (the equality tests pin the two against each
  other).

Partial tracing (§3.1): a front end can be confined to a subset of
procedures, which is how an application community distributes learning
overhead across members.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.inference import InferenceEngine
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook, OperandObservation, TransferKind
from repro.vm.isa import Register

_UNSET = object()


@dataclass
class _Activation:
    entry: int
    sp_entry: int


class TraceFrontEnd(ExecutionHook):
    """Streams operand observations into an inference engine.

    Parameters
    ----------
    engine:
        The inference engine to feed.
    procedures:
        Procedure database used to attribute pcs to procedures.
    traced_procedures:
        If not None, only instructions belonging to these procedure
        entries are traced (partial/distributed learning).
    batched:
        Use the batched kernel-level observation path (default); pass
        False for the per-instruction callback path.
    pruned_pcs:
        Instruction addresses the static pruner proved redundant
        (:mod:`repro.analysis.pruning`); their extractors are never
        compiled, so the records simply do not exist.  The set is fixed
        for the front end's lifetime, so the kernel filter stays
        epoch-stable.
    """

    def __init__(self, engine: InferenceEngine,
                 procedures: ProcedureDatabase,
                 traced_procedures: set[int] | None = None,
                 batched: bool = True,
                 pruned_pcs: frozenset[int] = frozenset()):
        self.engine = engine
        self.procedures = procedures
        self.traced_procedures = traced_procedures
        self.pruned_pcs = pruned_pcs
        self.batched = batched
        if batched:
            self.lazy_operands = True
            # Activations replay from in-band batch markers; the eager
            # transfer/return routes would double-count them.
            self.suppressed_events = ("on_transfer", "on_return")
            # Tracing everything means the kernel filter is the
            # identity forever — let the kernel skip epoch polling.
            # (The pruned set is fixed at construction, so it never
            # perturbs epoch stability.)
            self.observation_epoch_stable = traced_procedures is None
        else:
            self.wants_operands = True
        self._activations: list[_Activation] = []
        self.traced = 0
        self.skipped = 0
        #: pc -> procedure entry (or None), valid per database version.
        self._entry_cache: dict[int, int | None] = {}
        self._entry_cache_version = -1

    # -- activation tracking ------------------------------------------------
    # In batched mode these eager routes are suppressed (see __init__);
    # the same transitions replay from the in-band batch markers.  They
    # remain the activation source for the legacy per-instruction path.

    def on_transfer(self, cpu: CPU, pc: int, kind: str,
                    target: int) -> None:
        if kind in (TransferKind.CALL, TransferKind.INDIRECT_CALL):
            self._activations.append(_Activation(
                entry=target, sp_entry=cpu.registers[Register.ESP]))

    def on_return(self, cpu: CPU, pc: int, target: int) -> None:
        if self._activations:
            self._activations.pop()

    # -- kernel-level observation filter --------------------------------------

    def observes(self, pc: int) -> bool:
        """Partial tracing at the CPU: snapshot only traced procedures
        (minus statically pruned instructions)."""
        if pc in self.pruned_pcs:
            return False
        if self.traced_procedures is None:
            return True
        procedure = self.procedures.procedure_of(pc)
        return procedure is not None and \
            procedure.entry in self.traced_procedures

    def observation_epoch(self) -> int:
        if self.traced_procedures is None:
            return 0
        return self.procedures.version

    # -- observation intake ---------------------------------------------------

    def _entry_of(self, pc: int) -> int | None:
        entry = self._entry_cache.get(pc, _UNSET)
        if entry is _UNSET:
            procedure = self.procedures.procedure_of(pc)
            entry = procedure.entry if procedure is not None else None
            self._entry_cache[pc] = entry
        return entry

    def on_operand_batch(self, cpu: CPU, records: list[tuple]) -> None:
        """Digest one buffered stretch of raw snapshots, in order.

        Activation markers (``record[0] is None``) are interleaved with
        the observations at exactly the points the eager ``on_transfer``
        / ``on_return`` callbacks would have fired, so replaying them
        keeps the call shadow bit-equal to the legacy path no matter
        where the buffer boundaries fall.  The replay and the digest run
        as one fused loop inside the engine
        (:meth:`~repro.learning.inference.InferenceEngine.observe_batch`)
        — the front end hands over its activation list (mutated in
        place), entry cache, and tracing filter, and books the returned
        traced/skipped counts.
        """
        procedures = self.procedures
        if procedures.version != self._entry_cache_version:
            # Discovery may have attributed previously unknown pcs.
            self._entry_cache.clear()
            self._entry_cache_version = procedures.version
        traced, skipped = self.engine.observe_batch(
            records, self._activations, _Activation, self._entry_cache,
            procedures.procedure_of, self.traced_procedures)
        self.traced += traced
        self.skipped += skipped

    def on_operands(self, cpu: CPU,
                    observation: OperandObservation) -> None:
        procedure = self.procedures.procedure_of(observation.pc)
        entry = procedure.entry if procedure is not None else None
        if self.traced_procedures is not None and \
                entry not in self.traced_procedures:
            self.skipped += 1
            return
        sp_entry = None
        if self._activations and entry is not None and \
                self._activations[-1].entry == entry:
            sp_entry = self._activations[-1].sp_entry
        self.traced += 1
        self.engine.observe(observation, entry, sp_entry)
