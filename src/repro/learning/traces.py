"""The trace front end (the "Daikon x86 front end" analogue, §2.2.1).

Attaches to a running application as an execution hook and feeds operand
observations to an :class:`~repro.learning.inference.InferenceEngine`
online.  The front end also tracks procedure activations (its own
lightweight call shadow) so the engine can compute stack-pointer offsets
relative to procedure entry.

Two intake modes, identical in what the engine learns:

- **batched** (the default): the front end subscribes as a
  ``lazy_operands`` hook.  The CPU snapshots raw operand tuples through
  compiled extractors (:mod:`repro.vm.observe`), buffers them per block,
  and delivers them in bulk at control transfers — before activation
  shadows update, so every record digests under the activation it
  executed in.  The front end's :meth:`observes` filter confines
  extraction to the traced procedures *at the kernel level*: an
  untraced instruction costs nothing at all, not even a skipped
  callback.
- **legacy** (``batched=False``): per-instruction ``on_operands``
  callbacks over dict-shaped observations — the original path, kept as
  the semantic reference (the equality tests pin the two against each
  other).

Partial tracing (§3.1): a front end can be confined to a subset of
procedures, which is how an application community distributes learning
overhead across members.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.inference import InferenceEngine
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook, OperandObservation, TransferKind
from repro.vm.isa import Register

_UNSET = object()


@dataclass
class _Activation:
    entry: int
    sp_entry: int


class TraceFrontEnd(ExecutionHook):
    """Streams operand observations into an inference engine.

    Parameters
    ----------
    engine:
        The inference engine to feed.
    procedures:
        Procedure database used to attribute pcs to procedures.
    traced_procedures:
        If not None, only instructions belonging to these procedure
        entries are traced (partial/distributed learning).
    batched:
        Use the batched kernel-level observation path (default); pass
        False for the per-instruction callback path.
    """

    def __init__(self, engine: InferenceEngine,
                 procedures: ProcedureDatabase,
                 traced_procedures: set[int] | None = None,
                 batched: bool = True):
        self.engine = engine
        self.procedures = procedures
        self.traced_procedures = traced_procedures
        self.batched = batched
        if batched:
            self.lazy_operands = True
        else:
            self.wants_operands = True
        self._activations: list[_Activation] = []
        self.traced = 0
        self.skipped = 0
        #: pc -> procedure entry (or None), valid per database version.
        self._entry_cache: dict[int, int | None] = {}
        self._entry_cache_version = -1

    # -- activation tracking ------------------------------------------------

    def on_transfer(self, cpu: CPU, pc: int, kind: str,
                    target: int) -> None:
        if kind in (TransferKind.CALL, TransferKind.INDIRECT_CALL):
            self._activations.append(_Activation(
                entry=target, sp_entry=cpu.registers[Register.ESP]))

    def on_return(self, cpu: CPU, pc: int, target: int) -> None:
        if self._activations:
            self._activations.pop()

    # -- kernel-level observation filter --------------------------------------

    def observes(self, pc: int) -> bool:
        """Partial tracing at the CPU: snapshot only traced procedures."""
        if self.traced_procedures is None:
            return True
        procedure = self.procedures.procedure_of(pc)
        return procedure is not None and \
            procedure.entry in self.traced_procedures

    def observation_epoch(self) -> int:
        if self.traced_procedures is None:
            return 0
        return self.procedures.version

    # -- observation intake ---------------------------------------------------

    def _entry_of(self, pc: int) -> int | None:
        entry = self._entry_cache.get(pc, _UNSET)
        if entry is _UNSET:
            procedure = self.procedures.procedure_of(pc)
            entry = procedure.entry if procedure is not None else None
            self._entry_cache[pc] = entry
        return entry

    def on_operand_batch(self, cpu: CPU, records: list[tuple]) -> None:
        """Digest one buffered block of raw snapshots, in order.

        Activations only change at control transfers and the CPU flushes
        before dispatching them, so the whole batch shares one (fixed)
        activation context.
        """
        procedures = self.procedures
        if procedures.version != self._entry_cache_version:
            # Discovery may have attributed previously unknown pcs.
            self._entry_cache.clear()
            self._entry_cache_version = procedures.version
        activations = self._activations
        top = activations[-1] if activations else None
        top_entry = top.entry if top is not None else None
        traced = self.traced_procedures
        entry_of = self._entry_of
        observe_record = self.engine.observe_record
        for record in records:
            entry = entry_of(record[0])
            if traced is not None and entry not in traced:
                self.skipped += 1
                continue
            sp_entry = top.sp_entry if (entry is not None and
                                        top_entry == entry) else None
            self.traced += 1
            observe_record(record, entry, sp_entry)

    def on_operands(self, cpu: CPU,
                    observation: OperandObservation) -> None:
        procedure = self.procedures.procedure_of(observation.pc)
        entry = procedure.entry if procedure is not None else None
        if self.traced_procedures is not None and \
                entry not in self.traced_procedures:
            self.skipped += 1
            return
        sp_entry = None
        if self._activations and entry is not None and \
                self._activations[-1].entry == entry:
            sp_entry = self._activations[-1].sp_entry
        self.traced += 1
        self.engine.observe(observation, entry, sp_entry)
