"""The trace front end (the "Daikon x86 front end" analogue, §2.2.1).

Attaches to a running application as an execution hook, asks the CPU for
per-instruction operand observations, and feeds them to an
:class:`~repro.learning.inference.InferenceEngine` online.  The front end
also tracks procedure activations (its own lightweight call shadow) so the
engine can compute stack-pointer offsets relative to procedure entry.

Partial tracing (§3.1): a front end can be confined to a subset of
procedures.  Observations from other procedures are skipped, which is how
an application community distributes learning overhead across members.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.inference import InferenceEngine
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook, OperandObservation, TransferKind
from repro.vm.isa import Register


@dataclass
class _Activation:
    entry: int
    sp_entry: int


class TraceFrontEnd(ExecutionHook):
    """Streams operand observations into an inference engine.

    Subscribes to ``on_operands`` (via ``wants_operands``, which also
    tells the CPU to build the observation records — the paper's
    learning overhead), plus ``on_transfer``/``on_return`` for its
    activation shadow.  Attaching a front end is what forces the kernel
    off its fast path: operand observation is inherently per-instruction.

    Parameters
    ----------
    engine:
        The inference engine to feed.
    procedures:
        Procedure database used to attribute pcs to procedures.
    traced_procedures:
        If not None, only instructions belonging to these procedure
        entries are traced (partial/distributed learning).
    """

    wants_operands = True

    def __init__(self, engine: InferenceEngine,
                 procedures: ProcedureDatabase,
                 traced_procedures: set[int] | None = None):
        self.engine = engine
        self.procedures = procedures
        self.traced_procedures = traced_procedures
        self._activations: list[_Activation] = []
        self.traced = 0
        self.skipped = 0

    # -- activation tracking ------------------------------------------------

    def on_transfer(self, cpu: CPU, pc: int, kind: str,
                    target: int) -> None:
        if kind in (TransferKind.CALL, TransferKind.INDIRECT_CALL):
            self._activations.append(_Activation(
                entry=target, sp_entry=cpu.registers[Register.ESP]))

    def on_return(self, cpu: CPU, pc: int, target: int) -> None:
        if self._activations:
            self._activations.pop()

    # -- observation intake ---------------------------------------------------

    def on_operands(self, cpu: CPU,
                    observation: OperandObservation) -> None:
        procedure = self.procedures.procedure_of(observation.pc)
        entry = procedure.entry if procedure is not None else None
        if self.traced_procedures is not None and \
                entry not in self.traced_procedures:
            self.skipped += 1
            return
        sp_entry = None
        if self._activations and entry is not None and \
                self._activations[-1].entry == entry:
            sp_entry = self._activations[-1].sp_entry
        self.traced += 1
        self.engine.observe(observation, entry, sp_entry)
