"""Pointer classification (§2.2.4).

Daikon was extended with a pointer heuristic: if a variable ever holds a
negative value or a value between 1 and 100,000, it is *not* a pointer;
otherwise it is presumed to be one.  Lower-bound and less-than inference
is skipped for pointer variables, which cuts learning, checking, and
evaluation time without losing useful repairs (orderings of raw pointers
are meaningless for our repair strategies).
"""

from __future__ import annotations

from repro.vm.isa import to_signed

#: Values in [1, NON_POINTER_LIMIT] mark a variable as a non-pointer.
NON_POINTER_LIMIT = 100_000


def disqualifies_pointer(signed: int) -> bool:
    """The paper's heuristic on one *signed* value: True when observing
    it proves the variable is not a pointer.  Single source of the rule
    — both the per-observation classifier and the inference engine's
    compiled digest path apply exactly this predicate."""
    return signed < 0 or 1 <= signed <= NON_POINTER_LIMIT


class PointerClassifier:
    """Tracks, per variable key, whether it can still be a pointer."""

    def __init__(self):
        self._not_pointer: set = set()
        self._seen: set = set()

    def observe(self, key, value: int) -> None:
        """Record one observed *value* for the variable *key*."""
        self._seen.add(key)
        if key in self._not_pointer:
            return
        if disqualifies_pointer(to_signed(value)):
            self._not_pointer.add(key)

    def mark_seen(self, key) -> None:
        """Register *key* as observed without a value (batch-path
        variable creation; values arrive via :meth:`disqualify`)."""
        self._seen.add(key)

    def disqualify(self, key) -> None:
        """Record that *key* exhibited a non-pointer value (the caller
        applied :func:`disqualifies_pointer`)."""
        self._not_pointer.add(key)

    def is_pointer(self, key) -> bool:
        """True if *key* was observed and never disqualified."""
        return key in self._seen and key not in self._not_pointer

    def is_not_pointer(self, key) -> bool:
        return key in self._not_pointer
