"""Pointer classification (§2.2.4).

Daikon was extended with a pointer heuristic: if a variable ever holds a
negative value or a value between 1 and 100,000, it is *not* a pointer;
otherwise it is presumed to be one.  Lower-bound and less-than inference
is skipped for pointer variables, which cuts learning, checking, and
evaluation time without losing useful repairs (orderings of raw pointers
are meaningless for our repair strategies).
"""

from __future__ import annotations

from repro.vm.isa import to_signed

#: Values in [1, NON_POINTER_LIMIT] mark a variable as a non-pointer.
NON_POINTER_LIMIT = 100_000


class PointerClassifier:
    """Tracks, per variable key, whether it can still be a pointer."""

    def __init__(self):
        self._not_pointer: set = set()
        self._seen: set = set()

    def observe(self, key, value: int) -> None:
        """Record one observed *value* for the variable *key*."""
        self._seen.add(key)
        if key in self._not_pointer:
            return
        signed = to_signed(value)
        if signed < 0 or 1 <= signed <= NON_POINTER_LIMIT:
            self._not_pointer.add(key)

    def is_pointer(self, key) -> bool:
        """True if *key* was observed and never disqualified."""
        return key in self._seen and key not in self._not_pointer

    def is_not_pointer(self, key) -> bool:
        return key in self._not_pointer
