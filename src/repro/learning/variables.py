"""Variables: the things invariants talk about.

Because ClearView operates on binaries, a "variable" is a value observed at
a specific instruction (§2.2): the content of a register operand, a loaded
or stored value, a computed effective address, an indirect-transfer target.
We identify a variable by ``(pc, slot)`` where ``slot`` is the stable
per-opcode operand name assigned by
:meth:`repro.vm.cpu.CPU.observe_operands`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.binary import Binary
from repro.vm.isa import Instruction, Opcode, OperandKind


@dataclass(frozen=True, order=True)
class Variable:
    """One binary-level variable: an operand slot at an instruction."""

    pc: int
    slot: str

    def __str__(self) -> str:
        return f"{self.pc:#x}:{self.slot}"

    @classmethod
    def parse(cls, text: str) -> "Variable":
        """Inverse of ``str``: ``"0x40:target"`` -> Variable(0x40, "target")."""
        pc_text, _, slot = text.partition(":")
        return cls(pc=int(pc_text, 16), slot=slot)


#: Slots that are never useful in invariants (bookkeeping values).
EXCLUDED_SLOTS = frozenset({"esp"})


def writable_register(instruction: Instruction, slot: str) -> int | None:
    """The register to overwrite to *enforce* a value for (instruction,
    slot), or None when the slot is not register-backed.

    Enforcement patches run before the instruction, so writing the
    register changes what the instruction will read/compute — this is the
    "change the values of registers" repair action of §2.5.
    """
    op = instruction.opcode
    if slot in ("dst", "dst_in") and op in (
            Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
            Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
            Opcode.SAR, Opcode.NEG, Opcode.NOT):
        return instruction.a
    if slot == "src" and instruction.b_kind == OperandKind.REGISTER and \
            op in (Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL,
                   Opcode.DIV, Opcode.AND, Opcode.OR, Opcode.XOR,
                   Opcode.SHL, Opcode.SHR, Opcode.SAR):
        return instruction.b
    if slot == "target" and op in (Opcode.CALLR, Opcode.JMPR):
        return instruction.a
    if slot == "value" and op in (Opcode.STORE, Opcode.STOREB):
        return instruction.b
    if slot == "value" and op in (Opcode.LOAD, Opcode.LOADB, Opcode.POP):
        return instruction.a
    if slot == "value" and op == Opcode.FREE:
        return instruction.a
    if slot == "value" and op in (Opcode.OUT, Opcode.OUTB) and \
            instruction.b_kind == OperandKind.REGISTER:
        return instruction.b
    if slot == "left" and op in (Opcode.CMP, Opcode.TEST):
        return instruction.a
    if slot == "right" and instruction.b_kind == OperandKind.REGISTER and \
            op in (Opcode.CMP, Opcode.TEST):
        return instruction.b
    if slot == "size" and op == Opcode.ALLOC and \
            instruction.b_kind == OperandKind.REGISTER:
        return instruction.b
    if slot == "value" and op == Opcode.PUSH and \
            instruction.b_kind == OperandKind.REGISTER:
        return instruction.b
    return None


#: Slots whose value exists only *after* the instruction executes.
_COMPUTED_REGISTER_SLOTS = frozenset({"dst"})


def slot_placement(instruction: Instruction, slot: str) -> str:
    """Where a patch over (instruction, slot) must run: "before" or "after".

    Slots the instruction *reads* (call targets, stored values, compare
    operands) are observable and writable before it executes.  Slots the
    instruction *computes into a register* (ALU results, loaded values)
    exist only afterwards — checking them pre-instruction would observe a
    stale value, and enforcing them pre-instruction would be overwritten.
    """
    if slot in _COMPUTED_REGISTER_SLOTS:
        return "after"
    if slot == "value" and instruction.opcode in (Opcode.LOAD,
                                                  Opcode.LOADB, Opcode.POP):
        return "after"
    return "before"


def read_post(cpu, instruction: Instruction, slot: str) -> int | None:
    """Read a computed slot's value *after* the instruction executed."""
    if slot in _COMPUTED_REGISTER_SLOTS:
        return cpu.registers[instruction.a]
    if slot == "value" and instruction.opcode in (Opcode.LOAD,
                                                  Opcode.LOADB, Opcode.POP):
        return cpu.registers[instruction.a]
    return None


def read_variable_value(cpu, pc: int, instruction: Instruction, slot: str,
                        when: str) -> int | None:
    """Read the current value of (pc, slot) from a patch context.

    "before" placement reads via the CPU's operand observer (pre-state);
    "after" placement reads the backing register post-execution.  When an
    after-placed patch needs a *read* slot of the same instruction (a
    same-instruction two-variable invariant), the slot's backing register
    is read directly — valid as long as the instruction did not clobber
    it, which holds for all code shapes in this repository.
    """
    if when == "before":
        return cpu.observe_operands(pc, instruction).slots.get(slot)
    value = read_post(cpu, instruction, slot)
    if value is not None:
        return value
    register = writable_register(instruction, slot)
    if register is not None:
        return cpu.registers[register]
    return None


def post_write_register(instruction: Instruction, slot: str) -> int | None:
    """The register holding an after-placed slot's value (to enforce it)."""
    if slot in _COMPUTED_REGISTER_SLOTS or (
            slot == "value" and instruction.opcode in (Opcode.LOAD,
                                                       Opcode.LOADB,
                                                       Opcode.POP)):
        return instruction.a
    return None


def is_enforceable(binary: Binary, variable: Variable) -> bool:
    """True when an enforcement patch can write this variable."""
    instruction = binary.decode_at(variable.pc)
    return writable_register(instruction, variable.slot) is not None


def is_call_target(binary: Binary, variable: Variable) -> bool:
    """True when the variable is the target of an indirect call —
    the case with the extra skip-call and return repairs (§2.5.1)."""
    instruction = binary.decode_at(variable.pc)
    return (instruction.opcode == Opcode.CALLR and
            variable.slot == "target")
