"""Staged learning (§3.1).

The alternative learning organisation the paper sketches: a cheap first
phase records which inputs exercise which regions (procedures) of the
application; learning proper happens only *in response to a failure*, by
replaying the recorded inputs that exercise the procedures near the
failure with tracing confined to those procedures.

Trade-off, per the paper: responding to a failure takes longer (the
model must be built on demand), but normal execution carries no learning
overhead and no large invariant database needs to be maintained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
)
from repro.learning.database import InvariantDatabase
from repro.learning.inference import InferenceEngine
from repro.learning.traces import TraceFrontEnd
from repro.vm.binary import Binary
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook
from repro.vm.isa import Instruction


class _CoverageRecorder(ExecutionHook):
    """Records which discovered procedures an input exercises."""

    def __init__(self, procedures: ProcedureDatabase):
        self.procedures = procedures
        self.exercised: set[int] = set()
        self._known_pcs: dict[int, int | None] = {}

    def before_instruction(self, cpu: CPU, pc: int,
                           instruction: Instruction) -> int | None:
        entry = self._known_pcs.get(pc, -1)
        if entry == -1:
            procedure = self.procedures.procedure_of(pc)
            entry = procedure.entry if procedure else None
            self._known_pcs[pc] = entry
        if entry is not None:
            self.exercised.add(entry)
        return None


@dataclass
class StagedLearner:
    """Two-phase, failure-driven learning."""

    binary: Binary
    config: EnvironmentConfig = field(default_factory=EnvironmentConfig.full)
    procedures: ProcedureDatabase = field(init=False)
    #: input index -> procedure entries it exercises.
    coverage: dict[int, set[int]] = field(default_factory=dict)
    inputs: list[bytes] = field(default_factory=list)
    pair_scope: str = "block"
    #: Observation counts, for overhead comparisons.
    phase1_observations: int = 0
    phase2_observations: int = 0

    def __post_init__(self):
        self.binary = self.binary.stripped()
        self.procedures = ProcedureDatabase(self.binary)

    # -- phase 1: record inputs and the regions they exercise -----------

    def record(self, inputs: list[bytes]) -> None:
        """Run *inputs* with coverage recording only (no value tracing —
        this is the cheap always-on phase)."""
        environment = ManagedEnvironment(self.binary, self.config)
        environment.cache_plugins.append(DiscoveryPlugin(self.procedures))
        for payload in inputs:
            recorder = _CoverageRecorder(self.procedures)
            environment.extra_hooks = [recorder]
            result = environment.run(payload)
            if result.outcome is Outcome.COMPLETED:
                index = len(self.inputs)
                self.inputs.append(payload)
                self.coverage[index] = recorder.exercised
            self.phase1_observations += result.steps

    # -- phase 2: respond to a failure -----------------------------------

    def procedures_near(self, failure_pc: int,
                        call_sites: tuple[int, ...] = ()) -> set[int]:
        """The procedures the §2.4.1 candidate search will look at."""
        nearby: set[int] = set()
        for point in (failure_pc,) + tuple(call_sites):
            procedure = self.procedures.procedure_of(point)
            if procedure is not None:
                nearby.add(procedure.entry)
        return nearby

    def learn_for_failure(self, failure_pc: int,
                          call_sites: tuple[int, ...] = ()
                          ) -> InvariantDatabase:
        """Replay the recorded inputs that exercise procedures near the
        failure, tracing only those procedures, and infer invariants."""
        targets = self.procedures_near(failure_pc, call_sites)
        replay = [self.inputs[index] for index, exercised
                  in self.coverage.items() if exercised & targets]
        engine = InferenceEngine(self.procedures,
                                 pair_scope=self.pair_scope)
        environment = ManagedEnvironment(self.binary, self.config)
        environment.cache_plugins.append(DiscoveryPlugin(self.procedures))
        front_end = TraceFrontEnd(engine, self.procedures,
                                  traced_procedures=targets)
        environment.extra_hooks.append(front_end)
        for payload in replay:
            environment.run(payload)
        self.phase2_observations += engine.observations
        return engine.finalize()
