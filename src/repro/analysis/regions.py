"""Per-procedure write-region summaries for poke vetting.

Summarises where a procedure's reachable STORE/STOREB instructions can
write, in the memory layout's terms: exact global words (absolute or
constant-address stores into the data segment), the stack (stores
through stack-pointer-derived bases), and the heap (stores through
ALLOC-derived or unknown pointers).  Unknown-pointer stores are
classified heap-or-stack, never globals: a legitimate program that
writes a global does so through an absolute or constant address in this
ISA (the assembler has no global-pointer arithmetic idiom), so a
``PokePatch`` aimed at a data-segment word the procedure never
addresses exactly is a wild write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.constprop import (
    HEAP,
    TOP,
    ProcedureAnalysis,
    eval_address,
)
from repro.vm.isa import WORD_SIZE, Opcode


@dataclass
class WriteRegions:
    """Where one procedure's stores can land."""

    #: Exact byte addresses of absolute/constant-address stores (each
    #: store contributes its full word or byte span).
    exact_addresses: set[int] = field(default_factory=set)
    writes_stack: bool = False
    writes_heap: bool = False
    #: A reachable store through a pointer the analysis cannot place:
    #: could be heap or stack, never an unaddressed global.
    writes_unknown: bool = False

    def to_dict(self) -> dict:
        return {
            "exact_addresses": sorted(self.exact_addresses),
            "writes_stack": self.writes_stack,
            "writes_heap": self.writes_heap,
            "writes_unknown": self.writes_unknown,
        }


def write_regions(analysis: ProcedureAnalysis) -> WriteRegions:
    """Summarise the reachable stores of *analysis*'s procedure."""
    regions = WriteRegions()
    for block in analysis.cfg.blocks.values():
        if analysis.block_in.get(block.start) is None:
            continue  # unreachable
        for pc, instruction in block.instructions:
            if instruction.opcode not in (Opcode.STORE, Opcode.STOREB):
                continue
            state = analysis.state_at(pc)
            span = WORD_SIZE if instruction.opcode == Opcode.STORE \
                else 1
            address = eval_address(state, instruction.a,
                                   instruction.c) \
                if state is not None else TOP
            if address is TOP:
                regions.writes_unknown = True
            elif address[0] == "const":
                regions.exact_addresses.update(
                    range(address[1], address[1] + span))
            elif address[0] == "sp":
                regions.writes_stack = True
            elif address == HEAP:
                regions.writes_heap = True
            else:  # ebp0-relative: the caller's frame — stack
                regions.writes_stack = True
    return regions
