"""Pre-deployment static patch vetting over the MiniX86 CFG.

ClearView's original defence against bad candidate repairs is dynamic:
ship the patch, watch it fail, revoke it (§2.6 plus the guardrail
ledger).  That containment loop costs real executions — on channel
members a loop-forever patch costs a *kill*.  This module moves the
obviously-wrong candidates out of the pool before anything executes,
using the dataflow results in this package:

1. **Alignment/bounds** — an unconditional redirect must target an
   ``INSTRUCTION_SIZE``-aligned address inside the code segment
   (rejects the chaos ``wrong-pc`` adversary, which deliberately lands
   mid-instruction).
2. **Progress** — from a redirect's target, some exit (RET, HALT,
   indirect jump, or falling off the code image) must remain statically
   reachable with the patch's own redirect applied at its anchor
   (rejects ``loop-forever``; :func:`~repro.cfg.dominators.natural_loops`
   names the trapping loop in the finding).
3. **Write regions** — a patched memory write must land where the
   anchor's procedure could legitimately write: an exactly-summarised
   global word, or the stack/heap if the procedure writes there
   (rejects ``wild-write``; writes into code, the guard gap, or off the
   address space are always rejected).
4. **Clobber** — registers a patch writes beyond its enforcement
   target must be dead at the anchor (liveness is conservative, so
   "dead" is a guarantee; return-from-procedure repairs are exempt —
   their writes are the unwind itself, validated dynamically).
5. **Value consistency** — a set-value enforcement must write a value
   satisfying its own invariant (rejects ``wrong-value`` over one-of
   invariants; a lower-bound invariant whose bound lies below the
   garbage value is statically indistinguishable from a legal
   enforcement and passes — the documented residual for the dynamic
   backstop).

Every rule is *structurally* false-positive-free for the standard §2.5
repair menu: set-value/set-from-variable repairs write only their
enforcement register with an invariant-satisfying value, skip-call and
return repairs redirect conditionally, and no legitimate repair pokes
memory.  The property suite pins this on real learn/attack runs.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.analysis.constprop import (
    ProcedureAnalysis,
    Summary,
    compute_summaries,
)
from repro.analysis.liveness import Liveness
from repro.analysis.regions import WriteRegions, write_regions
from repro.cfg.dominators import natural_loops
from repro.core.repair import (
    RepairPatch,
    ReturnFromProcedureRepair,
    SetValueRepair,
)
from repro.dynamo.patches import JumpPatch, Patch, PokePatch
from repro.learning.invariants import LowerBound, OneOf
from repro.learning.variables import writable_register
from repro.vm.binary import Binary
from repro.vm.isa import (
    CONDITIONAL_JUMPS,
    INSTRUCTION_SIZE,
    WORD_SIZE,
    Opcode,
    Register,
    to_signed,
)
from repro.vm.memory import Memory

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cfg.discovery import ProcedureDatabase

#: Rule identifiers, stable for reports and tests.
RULE_ALIGNMENT = "jump-alignment"
RULE_PROGRESS = "progress"
RULE_WRITE_REGION = "write-region"
RULE_CLOBBER = "register-clobber"
RULE_VALUE = "value-consistency"


@dataclass(frozen=True)
class VetFinding:
    """One reason a candidate's patch set is statically unsafe."""

    rule: str
    pc: int
    detail: str

    def to_dict(self) -> dict:
        return {"rule": self.rule, "pc": self.pc, "detail": self.detail}


@dataclass
class VetReport:
    """Verdict for one compiled candidate (or the binary self-check)."""

    description: str = ""
    findings: list[VetFinding] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {"description": self.description,
                "accepted": self.accepted,
                "findings": [finding.to_dict()
                             for finding in self.findings]}


def _exit_successors(instruction, pc: int, code_size: int) -> list[int] | None:
    """Static successors of *instruction* at *pc*, or None for an exit.

    Exits are RET, HALT and indirect jumps (control provably leaves
    straight-line code), plus falling or jumping outside the image
    (which faults — the run *terminates*, the opposite of a hang).
    Calls are treated as falling through: a callee that never returns
    only makes this analysis accept more, and the dynamic backstop
    still covers accepted patches.
    """
    op = instruction.opcode
    if op in (Opcode.RET, Opcode.HALT, Opcode.JMPR):
        return None
    if op == Opcode.JMP:
        return [instruction.a]
    if op in CONDITIONAL_JUMPS:
        return [instruction.a, pc + INSTRUCTION_SIZE]
    return [pc + INSTRUCTION_SIZE]


class Vetter:
    """Static safety checks for compiled candidate patches.

    One instance per (binary, procedure database) pair; the dataflow
    results are computed lazily per procedure and cached, so repeated
    vetting during an evaluation episode costs one analysis per touched
    procedure.
    """

    def __init__(self, binary: Binary, procedures: "ProcedureDatabase"):
        self.binary = binary
        self.procedures = procedures
        #: Segment geometry only (never executed): where code, globals,
        #: heap and stack live for the write-region rule.
        self._layout = Memory(len(binary.code))
        self._summaries: dict[int, Summary] | None = None
        self._liveness: dict[int, Liveness] = {}
        self._analyses: dict[int, ProcedureAnalysis] = {}
        self._regions: dict[int, WriteRegions] = {}

    # -- lazy per-procedure analyses ------------------------------------

    def summaries(self) -> dict[int, Summary]:
        if self._summaries is None:
            self._summaries = compute_summaries(
                self.procedures.procedures)
        return self._summaries

    def liveness_for(self, pc: int) -> Liveness | None:
        cfg = self.procedures.procedure_of(pc)
        if cfg is None:
            return None
        if cfg.entry not in self._liveness:
            self._liveness[cfg.entry] = Liveness(cfg)
        return self._liveness[cfg.entry]

    def regions_for(self, pc: int) -> WriteRegions | None:
        cfg = self.procedures.procedure_of(pc)
        if cfg is None:
            return None
        if cfg.entry not in self._regions:
            if cfg.entry not in self._analyses:
                self._analyses[cfg.entry] = ProcedureAnalysis(
                    cfg, self.summaries())
            self._regions[cfg.entry] = write_regions(
                self._analyses[cfg.entry])
        return self._regions[cfg.entry]

    # -- the rules -------------------------------------------------------

    def vet(self, patches: list[Patch], description: str = "") -> VetReport:
        """Statically vet one compiled candidate's patch set."""
        report = VetReport(description=description)
        for patch in patches:
            if isinstance(patch, JumpPatch) and \
                    not isinstance(patch, RepairPatch):
                self._vet_redirect(patch, report)
            if isinstance(patch, PokePatch):
                self._vet_poke(patch, report)
            self._vet_clobber(patch, report)
            if isinstance(patch, SetValueRepair):
                self._vet_value(patch, report)
        return report

    def _vet_redirect(self, patch: JumpPatch, report: VetReport) -> None:
        target = patch.target
        code_size = len(self.binary.code)
        if target % INSTRUCTION_SIZE != 0 or \
                not 0 <= target < code_size:
            report.findings.append(VetFinding(
                RULE_ALIGNMENT, patch.pc,
                f"redirect target {target:#x} is "
                f"{'misaligned' if target % INSTRUCTION_SIZE else 'outside the code segment'}"))
            return
        if not self._exit_reachable(patch.pc, target):
            loops = natural_loops(target, self._successor_graph(
                patch.pc, target))
            headers = ", ".join(f"{header:#x}"
                                for header in sorted(loops)) or "none"
            report.findings.append(VetFinding(
                RULE_PROGRESS, patch.pc,
                f"no static path from redirect target {target:#x} to "
                f"any exit with the patch installed "
                f"(trapping loop headers: {headers})"))

    def _successor_graph(self, anchor: int,
                         target: int) -> dict[int, list[int]]:
        """Instruction-level successor map reachable from *target*,
        with the patch's own redirect applied at *anchor*."""
        code_size = len(self.binary.code)
        graph: dict[int, list[int]] = {}
        worklist = [target]
        while worklist:
            pc = worklist.pop()
            if pc in graph:
                continue
            if pc == anchor:
                successors: list[int] | None = [target]
            else:
                successors = _exit_successors(
                    self.binary.decode_at(pc), pc, code_size)
            if successors is None:
                graph[pc] = []
                continue
            inside = [s for s in successors if 0 <= s < code_size]
            graph[pc] = inside
            worklist.extend(inside)
        return graph

    def _exit_reachable(self, anchor: int, target: int) -> bool:
        code_size = len(self.binary.code)
        seen: set[int] = set()
        worklist = [target]
        while worklist:
            pc = worklist.pop()
            if pc in seen:
                continue
            seen.add(pc)
            if pc == anchor:
                worklist.append(target)
                continue
            successors = _exit_successors(
                self.binary.decode_at(pc), pc, code_size)
            if successors is None:
                return True
            for successor in successors:
                if not 0 <= successor < code_size:
                    return True  # faults out: the run terminates
                worklist.append(successor)
        return False

    def _vet_poke(self, patch: PokePatch, report: VetReport) -> None:
        layout = self._layout
        address = patch.address
        span = WORD_SIZE

        def reject(reason: str) -> None:
            report.findings.append(VetFinding(
                RULE_WRITE_REGION, patch.pc,
                f"patched write to {address:#x}: {reason}"))

        if address < 0 or address + span > layout.stack_top:
            reject("outside the address space")
        elif address < layout.code_limit:
            reject("writes the code segment")
        elif address < layout.data_base:
            reject("writes the unmapped guard region")
        elif address < layout.data_limit:
            regions = self.regions_for(patch.pc)
            words = set(range(address, address + span))
            if regions is None or not words <= regions.exact_addresses:
                reject("the anchor's procedure never writes this "
                       "global (wild write)")
        elif address < layout.heap_limit:
            regions = self.regions_for(patch.pc)
            if regions is None or not (regions.writes_heap
                                       or regions.writes_unknown):
                reject("the anchor's procedure never writes the heap")
        else:
            regions = self.regions_for(patch.pc)
            if regions is None or not (regions.writes_stack
                                       or regions.writes_unknown):
                reject("the anchor's procedure never writes the stack")

    def _vet_clobber(self, patch: Patch, report: VetReport) -> None:
        writes = patch.register_writes()
        if not writes:
            return
        if isinstance(patch, ReturnFromProcedureRepair):
            # The unwind's writes (ESP/EBP/EAX) are the repair itself;
            # their safety is the sp-offset invariant's job, validated
            # by the dynamic backstop.
            return
        exempt: set[int] = set()
        if isinstance(patch, RepairPatch) and patch.invariant is not None:
            for variable in patch.invariant.variables():
                register = writable_register(
                    self.binary.decode_at(variable.pc), variable.slot)
                if register is not None:
                    exempt.add(register)
        extra = set(writes) - exempt
        if not extra:
            return
        liveness = self.liveness_for(patch.pc)
        if liveness is None:
            live = frozenset(range(len(Register)))
        elif patch.when == "after":
            live = liveness.live_out(patch.pc)
        else:
            live = liveness.live_in(patch.pc)
        clobbered = sorted(extra & live)
        if clobbered:
            names = ", ".join(Register(r).name for r in clobbered)
            report.findings.append(VetFinding(
                RULE_CLOBBER, patch.pc,
                f"patch writes live register(s) {names} beyond its "
                f"enforcement target"))

    def _vet_value(self, patch: SetValueRepair,
                   report: VetReport) -> None:
        invariant = patch.invariant
        if isinstance(invariant, OneOf):
            if patch.value not in invariant.values:
                report.findings.append(VetFinding(
                    RULE_VALUE, patch.pc,
                    f"enforced value {patch.value} is not in the "
                    f"invariant's value set "
                    f"{{{', '.join(str(v) for v in sorted(invariant.values))}}}"))
        elif isinstance(invariant, LowerBound):
            if to_signed(patch.value) < invariant.bound:
                report.findings.append(VetFinding(
                    RULE_VALUE, patch.pc,
                    f"enforced value {patch.value} violates the "
                    f"invariant's bound {invariant.bound}"))
        # LessThan enforcement copies one observed variable into the
        # other — always consistent by construction.

    # -- binary self-check (repro analyze --vet) -------------------------

    def vet_binary(self) -> VetReport:
        """Lint the unpatched binary with the same static rules.

        Flags direct control transfers to misaligned or out-of-image
        targets and reachable blocks from which no exit is statically
        reachable — the fleet-lint CI gate runs this over every shipped
        application.
        """
        report = VetReport(description="binary self-check")
        code_size = len(self.binary.code)
        for entry in self.procedures.entries():
            cfg = self.procedures.procedures[entry]
            for block in cfg.blocks.values():
                terminator = block.terminator
                pc = block.terminator_pc
                if terminator.opcode == Opcode.JMP or \
                        terminator.opcode in CONDITIONAL_JUMPS:
                    target = terminator.a
                    if target % INSTRUCTION_SIZE != 0 or \
                            not 0 <= target < code_size:
                        report.findings.append(VetFinding(
                            RULE_ALIGNMENT, pc,
                            f"branch target {target:#x} is misaligned "
                            f"or outside the code segment"))
                if not self._exit_reachable(-1, block.start):
                    report.findings.append(VetFinding(
                        RULE_PROGRESS, block.start,
                        f"no static path from block {block.start:#x} "
                        f"to any exit"))
        return report
