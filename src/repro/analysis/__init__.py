"""Static dataflow analysis over the MiniX86 CFG.

Two consumers sit on the shared framework (worklist solvers, liveness,
constant/stack-pointer propagation, write-region summaries):

- :mod:`repro.analysis.vetting` — pre-deployment patch vetting, so
  statically-unsafe repair candidates are ejected before any community
  member runs them;
- :mod:`repro.analysis.pruning` — static observation pruning, dropping
  provably-constant operand records from the learning extraction plan
  while reproducing their statistics exactly.
"""

from repro.analysis.constprop import (
    ProcedureAnalysis,
    Summary,
    compute_summaries,
)
from repro.analysis.liveness import Liveness
from repro.analysis.pruning import (
    PruningPlan,
    build_pruning_plan,
    scout_pruning_plan,
)
from repro.analysis.regions import WriteRegions, write_regions
from repro.analysis.vetting import (
    RULE_ALIGNMENT,
    RULE_CLOBBER,
    RULE_PROGRESS,
    RULE_VALUE,
    RULE_WRITE_REGION,
    VetFinding,
    VetReport,
    Vetter,
)

__all__ = [
    "Liveness",
    "ProcedureAnalysis",
    "PruningPlan",
    "RULE_ALIGNMENT",
    "RULE_CLOBBER",
    "RULE_PROGRESS",
    "RULE_VALUE",
    "RULE_WRITE_REGION",
    "Summary",
    "VetFinding",
    "VetReport",
    "Vetter",
    "WriteRegions",
    "build_pruning_plan",
    "compute_summaries",
    "scout_pruning_plan",
    "write_regions",
]
