"""Generic worklist dataflow solver over :class:`ProcedureCFG` blocks.

The analyses in this package (liveness, constant/stack-pointer
propagation, write-region summaries) all share one shape: a fact per
basic block, a transfer function across the block's instructions, and a
join at control-flow merges, iterated to a fixpoint.  This module is
that shape, direction-agnostic.

Facts must be immutable values with structural equality (frozensets,
tuples); transfer functions must return fresh facts, never mutate their
argument.  Unreachable blocks keep the fact ``None`` — consumers treat
``None`` as "no information" (the block never executes on any path from
the entry, so any claim about it is vacuous).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cfg.graph import ProcedureCFG
from repro.dynamo.blocks import BasicBlock


def intraprocedural_edges(cfg: ProcedureCFG) -> dict[int, list[int]]:
    """Successor map restricted to blocks inside *cfg* (edges leaving
    the procedure — tail jumps into foreign code — are dropped; the
    consumers account for them explicitly where they matter)."""
    return {start: [target for target in cfg.edges.get(start, ())
                    if target in cfg.blocks]
            for start in cfg.blocks}


def predecessor_map(edges: dict[int, list[int]]) -> dict[int, list[int]]:
    """Invert a successor map."""
    predecessors: dict[int, list[int]] = {start: [] for start in edges}
    for start, targets in edges.items():
        for target in targets:
            predecessors[target].append(start)
    return predecessors


def escaping_successors(cfg: ProcedureCFG, block: BasicBlock) -> list[int]:
    """Static successor targets of *block* that leave the procedure."""
    return [target for target in block.successor_targets()
            if target not in cfg.blocks]


def solve_forward(cfg: ProcedureCFG, entry_fact,
                  transfer: Callable[[BasicBlock, object], object],
                  join: Callable[[object, object], object]
                  ) -> dict[int, object]:
    """Forward fixpoint: block-start -> fact at block *entry*.

    ``transfer(block, fact)`` maps a block-entry fact to the block-exit
    fact; ``join(a, b)`` merges facts at a control-flow merge.  Blocks
    unreachable from the entry keep ``None``.
    """
    edges = intraprocedural_edges(cfg)
    facts: dict[int, object] = {start: None for start in cfg.blocks}
    facts[cfg.entry] = entry_fact
    worklist: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    while worklist:
        start = worklist.popleft()
        queued.discard(start)
        out = transfer(cfg.blocks[start], facts[start])
        for successor in edges[start]:
            current = facts[successor]
            merged = out if current is None else join(current, out)
            if merged != current:
                facts[successor] = merged
                if successor not in queued:
                    queued.add(successor)
                    worklist.append(successor)
    return facts


def solve_backward(cfg: ProcedureCFG,
                   exit_fact: Callable[[BasicBlock], object],
                   transfer: Callable[[BasicBlock, object], object],
                   join: Callable[[object, object], object],
                   bottom) -> dict[int, object]:
    """Backward fixpoint: block-start -> fact at block *entry*.

    ``exit_fact(block)`` seeds the fact *after* a block for its
    escaping control flow (returns, halts, indirect jumps, edges out of
    the procedure); blocks with intra-procedure successors additionally
    join those successors' entry facts.  ``bottom`` is the identity of
    ``join`` (e.g. the empty frozenset for liveness).
    """
    edges = intraprocedural_edges(cfg)
    predecessors = predecessor_map(edges)
    facts: dict[int, object] = {start: bottom for start in cfg.blocks}
    worklist: deque[int] = deque(cfg.blocks)
    queued = set(cfg.blocks)
    while worklist:
        start = worklist.popleft()
        queued.discard(start)
        block = cfg.blocks[start]
        out = exit_fact(block)
        for successor in edges[start]:
            out = join(out, facts[successor])
        new_fact = transfer(block, out)
        if new_fact != facts[start]:
            facts[start] = new_fact
            for predecessor in predecessors[start]:
                if predecessor not in queued:
                    queued.add(predecessor)
                    worklist.append(predecessor)
    return facts
