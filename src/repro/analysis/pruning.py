"""Static observation pruning: drop provably-constant records.

The learning front end observes every instruction of every traced
procedure.  Many operand slots are *statically constant* — immediate
moves, address computations over constant bases, arithmetic over
constants — so their dynamic records carry no information the CFG does
not already hold.  This module proves those slots constant with
:mod:`repro.analysis.constprop`, removes their pcs from the extraction
plan at the kernel level (the CPU never snapshots them), and after the
run *injects* the statistics the records would have produced straight
into the inference engine, so the final invariant database is equal to
the unpruned run's — including sample counts.

The injection needs the dynamic execution counts the pruned records
would have carried.  Every pruned block keeps one **sentinel** pc
observed; because a basic block has no internal control transfers, the
block executes as a unit and the sentinel's per-pc sample count ``N``
(and its activation-matched sp-sample count ``M``) are exactly the
counts of every pruned pc in the block.

Pruning decisions:

- **Tier B (whole block)**: every slot of every slotful pc in the block
  is proved constant (and ESP is proved at a known entry-relative delta
  when the procedure is ever call-entered, so sp-offset statistics can
  be injected).  All pcs except the sentinel are pruned, and the
  block's less-than candidate pairs — constant against constant — are
  injected with their exact co-observation counts.  Loads, pops and
  returns read memory the analysis does not track, so blocks containing
  them are never Tier B.
- **Tier A (individual)**: in blocks that fail Tier B, esp-only records
  (direct jumps, calls, ENTER/LEAVE, NOP) are pruned individually when
  their ESP is proved (they carry no variables, so no pair bookkeeping
  is disturbed).

Soundness gates: a procedure is skipped entirely when static control
flow can enter it anywhere but its entry (a foreign jump into the
middle would carry states the per-procedure analysis never saw), when
it shares instructions with another discovered procedure, or — for the
whole image — when any indirect jump exists (a JMPR can land anywhere).
Calls are fine: they enter at entries, and the activation markers the
sp statistics key on are emitted by the CPU independently of
extraction.  The scout pass that sizes the plan runs the same workload
as the learning pass, which the harness already requires to be
deterministic and fault-free ("normal executions"); a run that faults
mid-block would break the block-uniform count assumption along with
the §3.1 clean-learning contract itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.constprop import (
    TOP,
    ProcedureAnalysis,
    compute_summaries,
    eval_address,
    eval_alu,
)
from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.dynamo.blocks import BasicBlock
from repro.dynamo.code_cache import CachePlugin
from repro.dynamo.execution import EnvironmentConfig, ManagedEnvironment
from repro.learning.inference import (
    _FNV_MASK,
    _FNV_OFFSET,
    _FNV_PRIME,
    _PairStats,
    _SPStats,
    _VariableStats,
    InferenceEngine,
)
from repro.learning.pointers import disqualifies_pointer
from repro.learning.variables import Variable
from repro.vm.binary import Binary
from repro.vm.hooks import ExecutionHook, TransferKind
from repro.vm.isa import (
    WORD_MASK,
    Instruction,
    Opcode,
    OperandKind,
    Register,
    to_signed,
)
from repro.vm.observe import _ALU_FUNCS, operand_layout

_ESP = int(Register.ESP)
_REG = OperandKind.REGISTER
_REGISTER_COUNT = len(Register)


# ---------------------------------------------------------------------------
# Abstract record evaluation (mirrors repro.vm.observe extractors)
# ---------------------------------------------------------------------------

def _record_values(state: tuple, instruction: Instruction) -> list:
    """Abstract value of each record slot, in :func:`operand_layout`
    order — the static twin of :func:`~repro.vm.observe.build_extractor`
    (which snapshots *pre*-state, like the analysis)."""
    op = instruction.opcode
    a = instruction.a
    b = instruction.b
    if instruction.b_kind == _REG:
        operand_b = state[b] if b < _REGISTER_COUNT else TOP
    else:
        operand_b = ("const", b & WORD_MASK)
    if op == Opcode.MOV:
        return [operand_b, operand_b]
    if op in _ALU_FUNCS:
        left = state[a]
        return [operand_b, left, eval_alu(op, left, operand_b)]
    if op in (Opcode.NEG, Opcode.NOT):
        value = state[a]
        if value is not TOP and value[0] == "const":
            result = -value[1] & WORD_MASK if op == Opcode.NEG \
                else ~value[1] & WORD_MASK
            return [value, ("const", result)]
        return [value, TOP]
    if op in (Opcode.LOAD, Opcode.LOADB):
        # The loaded value comes from untracked memory: never provable.
        return [eval_address(state, b, instruction.c), TOP]
    if op == Opcode.LEA:
        return [eval_address(state, b, instruction.c)]
    if op in (Opcode.STORE, Opcode.STOREB):
        source = state[b] if b < _REGISTER_COUNT else TOP
        return [eval_address(state, a, instruction.c), source]
    if op in (Opcode.CMP, Opcode.TEST):
        return [state[a], operand_b]
    if op in (Opcode.PUSH, Opcode.ALLOC, Opcode.OUT, Opcode.OUTB):
        return [operand_b]
    if op in (Opcode.POP, Opcode.RET):
        return [TOP]  # read from the stack: untracked memory
    if op in (Opcode.CALLR, Opcode.JMPR, Opcode.FREE):
        return [state[a]]
    return []


# ---------------------------------------------------------------------------
# Plan representation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _PrunedPc:
    pc: int
    #: (slot name, constant record value) per layout slot; empty for
    #: esp-only records.
    slots: tuple[tuple[str, int], ...]
    #: Proved entry-relative ESP delta (None when the procedure is
    #: never call-entered, so no sp statistics exist to reproduce).
    sp_delta: int | None


@dataclass
class _BlockPlan:
    sentinel: int
    pruned: list[_PrunedPc]
    #: Statically-holding less-than candidate pairs among the block's
    #: slotful variables (only populated for Tier-B blocks, where every
    #: participating value is a known constant).
    pairs: list[tuple[Variable, Variable]]


@dataclass
class PruningPlan:
    """Which pcs to stop observing, and how to reconstruct their
    statistics afterwards."""

    pruned_pcs: frozenset[int]
    blocks: list[_BlockPlan]
    procedures_analyzed: int = 0
    procedures_skipped: int = 0
    _fingerprints: dict[tuple[int, int], int] = field(
        default_factory=dict, repr=False)

    def _chain_fingerprint(self, value: int, count: int) -> int:
        """FNV fingerprint of *value* observed *count* times (memoised
        with incremental extension — blocks sharing constants and
        execution counts are the common case)."""
        key = (value, count)
        cached = self._fingerprints.get(key)
        if cached is not None:
            return cached
        start, fingerprint = 0, _FNV_OFFSET
        for (cached_value, cached_count), cached_fp \
                in self._fingerprints.items():
            if cached_value == value and start < cached_count <= count:
                start, fingerprint = cached_count, cached_fp
        for _ in range(count - start):
            fingerprint = ((fingerprint ^ value) * _FNV_PRIME) & _FNV_MASK
        self._fingerprints[key] = fingerprint
        return fingerprint

    def establish(self, engine: InferenceEngine) -> None:
        """Inject the pruned records' statistics into *engine*.

        Must run after the learning workload and before
        ``engine.finalize()``.  Reads each block's execution count from
        its sentinel, then replays exactly the statistics the dynamic
        records would have accumulated; finalize's deduplication,
        pointer suppression and pair filtering then apply to the
        injected state identically to an unpruned run's.
        """
        for plan in list(engine._plans.values()):
            engine._materialize_plan(plan)
        classifier = engine.pointer_classifier
        for block in self.blocks:
            count = engine._pc_samples.get(block.sentinel, 0)
            if count == 0:
                continue  # the block never executed
            sp_source = engine._sp.get(block.sentinel)
            matched = sp_source.samples if sp_source is not None else 0
            for pruned in block.pruned:
                engine._pc_samples[pruned.pc] = count
                if matched and pruned.sp_delta is not None:
                    engine._sp[pruned.pc] = _SPStats(
                        offset=pruned.sp_delta, constant=True,
                        samples=matched)
                for slot, value in pruned.slots:
                    variable = Variable(pruned.pc, slot)
                    stats = _VariableStats()
                    stats.variable = variable
                    stats.count = count
                    signed = to_signed(value)
                    stats.minimum = signed
                    stats.values = {value}
                    stats.fingerprint = self._chain_fingerprint(value,
                                                                count)
                    stats.last = value
                    stats.last_signed = signed
                    engine._variables[variable] = stats
                    engine._pc_variables.setdefault(
                        pruned.pc, []).append(variable)
                    engine._variable_created(pruned.pc)
                    classifier.mark_seen(variable)
                    if disqualifies_pointer(signed):
                        stats.not_pointer = True
                        classifier.disqualify(variable)
            for left, right in block.pairs:
                engine._pairs[(left, right)] = _PairStats(
                    samples=count, falsified=False)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------

def _dirty_entries(procedures: ProcedureDatabase) -> set[int]:
    """Procedures the per-procedure analysis cannot vouch for."""
    dirty: set[int] = set()
    entries = set(procedures.procedures)
    for entry, cfg in procedures.procedures.items():
        for block in cfg.blocks.values():
            if not block.truncated and \
                    block.terminator.opcode == Opcode.JMPR:
                # An indirect jump can land anywhere: give up globally.
                return entries
        for pc in cfg.instruction_addresses():
            owner = procedures.procedure_of(pc)
            if owner is not None and owner.entry != entry:
                # Overlapping procedures share this instruction; records
                # at it mix both procedures' states.
                dirty.add(entry)
                dirty.add(owner.entry)
        for block in cfg.blocks.values():
            for target in block.successor_targets():
                if target in cfg.blocks:
                    continue
                owner = procedures.procedure_of(target)
                if owner is not None and target != owner.entry:
                    # Foreign control enters mid-procedure.
                    dirty.add(owner.entry)
    return dirty


def _plan_block(analysis: ProcedureAnalysis, block: BasicBlock,
                call_entered: bool,
                executed_pcs: set[int]) -> _BlockPlan | None:
    if block.start not in executed_pcs:
        return None
    entries = []
    for pc, instruction in block.instructions:
        state = analysis.state_at(pc)
        names, computed = operand_layout(instruction)
        values = None
        delta = None
        if state is not None:
            esp = state[_ESP]
            if esp is not TOP and esp[0] == "sp":
                delta = esp[1]
            if names:
                abstract = _record_values(state, instruction)
                if all(v is not TOP and v[0] == "const"
                       for v in abstract):
                    values = [v[1] for v in abstract]
            else:
                values = []
        entries.append((pc, names, computed, values, delta))

    def prunable(entry) -> bool:
        _, _, _, values, delta = entry
        if values is None:
            return False
        return not call_entered or delta is not None

    slotful = [entry for entry in entries if entry[1]]
    tier_b = all(prunable(entry) for entry in slotful)
    candidates = {entry[0] for entry in entries if prunable(entry)
                  and (tier_b or not entry[1])}
    unpruned = [entry[0] for entry in entries
                if entry[0] not in candidates]
    if unpruned:
        sentinel = unpruned[0]
    else:
        # Everything is provable: keep the cheapest record back as the
        # block's execution counter (esp-only records carry no values).
        esp_only = [entry[0] for entry in entries if not entry[1]]
        sentinel = esp_only[0] if esp_only else entries[0][0]
        candidates.discard(sentinel)
    if not candidates:
        return None

    pruned = [
        _PrunedPc(pc=pc,
                  slots=tuple(zip(names, values)) if names else (),
                  sp_delta=delta if call_entered else None)
        for pc, names, computed, values, delta in entries
        if pc in candidates]

    pairs: list[tuple[Variable, Variable]] = []
    if tier_b and any(entry.slots for entry in pruned):
        # Enumerate the block's less-than candidates exactly as the
        # engine would have: each computed slot pairs against every
        # variable at an earlier slotful pc of the block, in both
        # directions; a constant-vs-constant pair survives iff the
        # inequality holds (a falsified pair never reaches the
        # database, so it is simply omitted).
        constant_of = {}
        for pc, names, computed, values, delta in slotful:
            for name, value in zip(names, values):
                constant_of[Variable(pc, name)] = value
        for index, (pc, names, computed, values, delta) \
                in enumerate(slotful):
            for slot in computed:
                target = Variable(pc, slot)
                target_signed = to_signed(constant_of[target])
                for earlier_pc, earlier_names, _, earlier_values, _ \
                        in slotful[:index]:
                    for other_name in earlier_names:
                        other = Variable(earlier_pc, other_name)
                        other_signed = to_signed(constant_of[other])
                        if other_signed <= target_signed:
                            pairs.append((other, target))
                        if target_signed <= other_signed:
                            pairs.append((target, other))
    return _BlockPlan(sentinel=sentinel, pruned=pruned, pairs=pairs)


def build_pruning_plan(procedures: ProcedureDatabase,
                       executed_pcs: set[int],
                       call_targets: set[int]) -> PruningPlan:
    """Compute the pruning plan for *procedures* given a scout run's
    executed instructions and observed dynamic call targets."""
    summaries = compute_summaries(procedures.procedures)
    dirty = _dirty_entries(procedures)
    blocks: list[_BlockPlan] = []
    pruned_pcs: set[int] = set()
    analyzed = 0
    for entry in procedures.entries():
        if entry in dirty:
            continue
        analyzed += 1
        cfg = procedures.procedures[entry]
        analysis = ProcedureAnalysis(cfg, summaries)
        call_entered = entry in call_targets
        for start in sorted(cfg.blocks):
            plan = _plan_block(analysis, cfg.blocks[start],
                               call_entered, executed_pcs)
            if plan is not None:
                blocks.append(plan)
                pruned_pcs.update(entry.pc for entry in plan.pruned)
    return PruningPlan(pruned_pcs=frozenset(pruned_pcs), blocks=blocks,
                       procedures_analyzed=analyzed,
                       procedures_skipped=len(dirty))


# ---------------------------------------------------------------------------
# Scout pass
# ---------------------------------------------------------------------------

class _ExecutedRecorder(CachePlugin):
    """Records every instruction address that becomes executable."""

    def __init__(self):
        self.pcs: set[int] = set()

    def on_block_build(self, cache, block) -> None:
        self.pcs.update(block.addresses())

    def on_block_restore(self, cache, block) -> None:
        self.pcs.update(block.addresses())


class _CallTargetRecorder(ExecutionHook):
    """Records dynamic call targets (the procedures that acquire
    activations, hence sp-offset statistics)."""

    def __init__(self):
        self.targets: set[int] = set()

    def on_transfer(self, cpu, pc, kind, target) -> None:
        if kind in (TransferKind.CALL, TransferKind.INDIRECT_CALL):
            self.targets.add(target)


def scout_pruning_plan(binary: Binary, payloads: list[bytes],
                       config: EnvironmentConfig | None = None
                       ) -> PruningPlan:
    """Run the learning workload once *without* tracing to discover
    procedures, executed blocks and call targets, then build the plan.

    The scout costs one untraced pass of the workload; the learning
    pass then observes strictly fewer records.  Deterministic workloads
    (the harness's contract) make the scout's coverage exact.
    """
    procedures = ProcedureDatabase(binary)
    environment = ManagedEnvironment(binary,
                                     config or EnvironmentConfig.full())
    environment.cache_plugins.append(DiscoveryPlugin(procedures))
    recorder = _ExecutedRecorder()
    environment.cache_plugins.append(recorder)
    calls = _CallTargetRecorder()
    environment.extra_hooks.append(calls)
    for payload in payloads:
        environment.run(payload)
    return build_pruning_plan(procedures, recorder.pcs, calls.targets)
