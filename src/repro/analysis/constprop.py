"""Forward constant / stack-pointer propagation over procedure CFGs.

One abstract value per register, in a flat lattice whose elements mirror
exactly what the observation-pruning consumer must prove:

- ``("const", v)`` — the register holds the 32-bit value *v* on every
  path (the value an extractor record would carry);
- ``("sp", d)``    — the register is the procedure-entry stack pointer
  plus *d* (signed), the same baseline the trace front end's activation
  markers record: ESP *after* the CALL pushed the return address;
- ``("ebp0",)``    — the caller's frame pointer, unmodified;
- ``("heap",)``    — some heap address returned by ALLOC;
- ``None``         — TOP, anything.

Transfer functions mirror the CPU's handlers (and the compiled
extractors in :mod:`repro.vm.observe` — the ALU results reuse
``_ALU_FUNCS`` verbatim, so a value proved constant here is bit-equal
to what the dynamic record would have carried).

Calls use per-procedure summaries computed as a greatest fixpoint over
the procedure database: a callee is *balanced* when every return leaves
ESP where the call put it, and *preserves EBP* when every return
restores the caller's frame pointer (the ENTER/LEAVE discipline; LEAVE
is modelled as restoring the caller's EBP exactly when EBP still points
at the slot this procedure's ENTER saved it in — a frame-discipline
assumption documented in docs/architecture.md).  Indirect calls and
unknown callees poison everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import solve_forward
from repro.cfg.graph import ProcedureCFG
from repro.dynamo.blocks import BasicBlock
from repro.vm.assembler import ABSOLUTE_BASE
from repro.vm.isa import (
    WORD_MASK,
    WORD_SIZE,
    Instruction,
    Opcode,
    OperandKind,
    Register,
    to_signed,
)
from repro.vm.observe import _ALU_FUNCS

_ESP = int(Register.ESP)
_EBP = int(Register.EBP)
_EAX = int(Register.EAX)
_REG = OperandKind.REGISTER
_REGISTER_COUNT = len(Register)

TOP = None
EBP0 = ("ebp0",)
HEAP = ("heap",)

#: Abstract machine state: one abstract value per register, as a tuple
#: for cheap structural equality in the fixpoint.
State = tuple

ENTRY_STATE: State = tuple(
    ("sp", 0) if index == _ESP else EBP0 if index == _EBP else TOP
    for index in range(_REGISTER_COUNT))


@dataclass(frozen=True)
class Summary:
    """Interprocedural effect of calling a procedure."""

    balanced: bool        #: every RET leaves ESP at the entry value
    preserves_ebp: bool   #: every RET restores the caller's EBP


#: What an unknown or indirect callee may do: anything.
UNKNOWN_SUMMARY = Summary(balanced=False, preserves_ebp=False)


def join_values(left, right):
    return left if left == right else TOP


def join_states(left: State, right: State) -> State:
    if left == right:
        return left
    return tuple(join_values(lv, rv) for lv, rv in zip(left, right))


def _eval_add(left, right):
    if left is TOP or right is TOP:
        return TOP
    if left[0] == "const" and right[0] == "const":
        return ("const", (left[1] + right[1]) & WORD_MASK)
    if left[0] == "sp" and right[0] == "const":
        return ("sp", to_signed((left[1] + right[1]) & WORD_MASK))
    if left[0] == "const" and right[0] == "sp":
        return ("sp", to_signed((left[1] + right[1]) & WORD_MASK))
    if HEAP in (left, right) and \
            (left[0] == "const" or right[0] == "const"):
        return HEAP
    return TOP


def _eval_sub(left, right):
    if left is TOP or right is TOP:
        return TOP
    if left[0] == "const" and right[0] == "const":
        return ("const", (left[1] - right[1]) & WORD_MASK)
    if left[0] == "sp" and right[0] == "const":
        return ("sp", to_signed((left[1] - right[1]) & WORD_MASK))
    if left[0] == "sp" and right[0] == "sp":
        return ("const", (left[1] - right[1]) & WORD_MASK)
    if left == HEAP and right[0] == "const":
        return HEAP
    return TOP


def eval_alu(op: Opcode, left, right):
    """Abstract result of a binary ALU op (mirrors ``_ALU_FUNCS``)."""
    if op == Opcode.ADD:
        return _eval_add(left, right)
    if op == Opcode.SUB:
        return _eval_sub(left, right)
    if left is not TOP and right is not TOP and \
            left[0] == "const" and right[0] == "const":
        if op == Opcode.DIV and right[1] == 0:
            return TOP  # the CPU faults; no record is produced
        return ("const", _ALU_FUNCS[op](left[1], right[1]))
    return TOP


def eval_address(state: State, base: int, displacement: int):
    """Abstract effective address for LOAD/STORE/LEA addressing."""
    if base == ABSOLUTE_BASE:
        return ("const", displacement & WORD_MASK)
    return _eval_add(state[base], ("const", displacement & WORD_MASK))


def transfer_instruction(state: State, instruction: Instruction,
                         summaries: dict[int, Summary]) -> State:
    """Abstract post-state of executing *instruction* from *state*."""
    op = instruction.opcode
    a = instruction.a
    values = list(state)

    def operand_b():
        if instruction.b_kind == _REG:
            return state[instruction.b]
        return ("const", instruction.b & WORD_MASK)

    if op == Opcode.MOV:
        values[a] = operand_b()
    elif op in _ALU_FUNCS:
        values[a] = eval_alu(op, state[a], operand_b())
    elif op == Opcode.NEG:
        current = state[a]
        values[a] = ("const", -current[1] & WORD_MASK) \
            if current is not TOP and current[0] == "const" else TOP
    elif op == Opcode.NOT:
        current = state[a]
        values[a] = ("const", ~current[1] & WORD_MASK) \
            if current is not TOP and current[0] == "const" else TOP
    elif op in (Opcode.LOAD, Opcode.LOADB):
        values[a] = TOP  # memory contents are not tracked
    elif op == Opcode.LEA:
        values[a] = eval_address(state, instruction.b, instruction.c)
    elif op == Opcode.POP:
        values[a] = TOP
        esp = state[_ESP]
        values[_ESP] = ("sp", esp[1] + WORD_SIZE) \
            if esp is not TOP and esp[0] == "sp" else TOP
    elif op == Opcode.PUSH:
        esp = state[_ESP]
        values[_ESP] = ("sp", esp[1] - WORD_SIZE) \
            if esp is not TOP and esp[0] == "sp" else TOP
    elif op == Opcode.ENTER:
        esp = state[_ESP]
        if esp is not TOP and esp[0] == "sp":
            saved = esp[1] - WORD_SIZE
            values[_EBP] = ("sp", saved)
            values[_ESP] = ("sp", saved - a)
        else:
            values[_EBP] = TOP
            values[_ESP] = TOP
    elif op == Opcode.LEAVE:
        ebp = state[_EBP]
        if ebp is not TOP and ebp[0] == "sp":
            values[_ESP] = ("sp", ebp[1] + WORD_SIZE)
            # Frame discipline: the slot at sp(-4) is where this
            # procedure's ENTER saved the caller's EBP.
            values[_EBP] = EBP0 if ebp[1] == -WORD_SIZE else TOP
        else:
            values[_ESP] = TOP
            values[_EBP] = TOP
    elif op == Opcode.ALLOC:
        values[_EAX] = HEAP
    elif op == Opcode.CALL:
        summary = summaries.get(a, UNKNOWN_SUMMARY)
        esp, ebp = state[_ESP], state[_EBP]
        values = [TOP] * _REGISTER_COUNT
        values[_ESP] = esp if summary.balanced else TOP
        values[_EBP] = ebp if summary.preserves_ebp else TOP
    elif op == Opcode.CALLR:
        values = [TOP] * _REGISTER_COUNT
    # CMP/TEST/STORE/STOREB/FREE/OUT/OUTB/jumps/RET/HALT/NOP: no
    # register effects.
    return tuple(values)


class ProcedureAnalysis:
    """Block-entry abstract states for one procedure, with lazy
    per-instruction materialization."""

    def __init__(self, cfg: ProcedureCFG,
                 summaries: dict[int, Summary]):
        self.cfg = cfg
        self.summaries = summaries
        self.block_in: dict[int, State | None] = solve_forward(
            cfg, ENTRY_STATE, self._transfer_block, join_states)
        self._per_pc: dict[int, State] = {}
        self._materialized: set[int] = set()

    def _transfer_block(self, block: BasicBlock,
                        fact: State) -> State:
        state = fact
        for pc, instruction in block.instructions:
            state = transfer_instruction(state, instruction,
                                         self.summaries)
        return state

    def state_at(self, pc: int) -> State | None:
        """Abstract state immediately *before* the instruction at *pc*
        (None for instructions in unreachable blocks or outside the
        procedure)."""
        if pc in self._per_pc:
            return self._per_pc[pc]
        block = self.cfg.block_of(pc)
        if block is None:
            return None
        if block.start not in self._materialized:
            self._materialized.add(block.start)
            state = self.block_in.get(block.start)
            if state is not None:
                for addr, instruction in block.instructions:
                    self._per_pc[addr] = state
                    state = transfer_instruction(state, instruction,
                                                 self.summaries)
        return self._per_pc.get(pc)

    def ret_states(self) -> list[State]:
        """Pre-states at every reachable RET terminator."""
        states = []
        for block in self.cfg.blocks.values():
            if block.terminator.opcode == Opcode.RET:
                state = self.state_at(block.terminator_pc)
                if state is not None:
                    states.append(state)
        return states

    def leaves_unpredictably(self) -> bool:
        """True when reachable control can leave the procedure other
        than by RET or HALT (indirect jump, tail jump into foreign
        code, truncated fall-through) — such a procedure cannot be
        summarised as balanced."""
        for block in self.cfg.blocks.values():
            if self.block_in.get(block.start) is None:
                continue
            if block.truncated:
                if block.end not in self.cfg.blocks:
                    return True
                continue
            if block.terminator.opcode == Opcode.JMPR:
                return True
            for target in block.successor_targets():
                if target not in self.cfg.blocks and \
                        block.terminator.opcode not in (Opcode.CALL,
                                                        Opcode.CALLR):
                    return True
        return False


def compute_summaries(procedures: dict[int, ProcedureCFG]
                      ) -> dict[int, Summary]:
    """Greatest-fixpoint call summaries for a set of procedures.

    Starts optimistic (every procedure balanced and EBP-preserving) and
    strikes claims until the analyses agree — the standard treatment
    for mutually recursive procedures.
    """
    summaries = {entry: Summary(balanced=True, preserves_ebp=True)
                 for entry in procedures}
    changed = True
    while changed:
        changed = False
        for entry, cfg in procedures.items():
            analysis = ProcedureAnalysis(cfg, summaries)
            balanced = not analysis.leaves_unpredictably()
            preserves = balanced
            for state in analysis.ret_states():
                if state[_ESP] != ("sp", 0):
                    balanced = False
                if state[_EBP] != EBP0:
                    preserves = False
            new = Summary(balanced=balanced, preserves_ebp=preserves)
            if new != summaries[entry]:
                summaries[entry] = new
                changed = True
    return summaries
