"""Backward register liveness over a procedure CFG.

Used by the patch vetter's clobber rule: a repair patch must not write
a register that is *live* at its anchor (some path reads it before the
next write), except the register it exists to enforce.  The analysis
errs on the side of liveness — calls are assumed to read every
register, control flow that leaves the procedure (indirect jumps,
truncated blocks falling into foreign code) keeps everything live, and
returns keep the result/frame/stack registers live for the caller.  A
register this analysis calls *dead* is therefore genuinely dead.
"""

from __future__ import annotations

from repro.analysis.dataflow import solve_backward
from repro.cfg.graph import ProcedureCFG
from repro.dynamo.blocks import BasicBlock
from repro.vm.assembler import ABSOLUTE_BASE
from repro.vm.isa import (
    CONDITIONAL_JUMPS,
    Instruction,
    Opcode,
    OperandKind,
    Register,
)

ALL_REGISTERS: frozenset[int] = frozenset(range(len(Register)))

#: Live after a RET, for the caller: the result (EAX), the restored
#: frame pointer, and the stack pointer itself.
_RETURN_LIVE = frozenset({int(Register.EAX), int(Register.EBP),
                          int(Register.ESP)})

_ESP = int(Register.ESP)
_EBP = int(Register.EBP)
_EAX = int(Register.EAX)

_BINARY_ALU = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SAR})


def uses_and_defs(instruction: Instruction
                  ) -> tuple[frozenset[int], frozenset[int]]:
    """(registers read, registers written) by one instruction.

    Conservative in the liveness-preserving direction: calls read
    everything and define nothing (the callee's clobbers must not kill
    liveness across the call site).
    """
    op = instruction.opcode
    b_reg = {instruction.b} \
        if instruction.b_kind == OperandKind.REGISTER else set()
    if op == Opcode.MOV:
        return frozenset(b_reg), frozenset({instruction.a})
    if op in _BINARY_ALU:
        return frozenset({instruction.a} | b_reg), \
            frozenset({instruction.a})
    if op in (Opcode.NEG, Opcode.NOT):
        return frozenset({instruction.a}), frozenset({instruction.a})
    if op in (Opcode.LOAD, Opcode.LOADB, Opcode.LEA):
        base = set() if instruction.b == ABSOLUTE_BASE \
            else {instruction.b}
        return frozenset(base), frozenset({instruction.a})
    if op in (Opcode.STORE, Opcode.STOREB):
        base = set() if instruction.a == ABSOLUTE_BASE \
            else {instruction.a}
        return frozenset(base | {instruction.b}), frozenset()
    if op in (Opcode.CMP, Opcode.TEST):
        return frozenset({instruction.a} | b_reg), frozenset()
    if op == Opcode.PUSH:
        return frozenset(b_reg | {_ESP}), frozenset({_ESP})
    if op == Opcode.POP:
        return frozenset({_ESP}), frozenset({instruction.a, _ESP})
    if op in (Opcode.CALL, Opcode.CALLR):
        return ALL_REGISTERS, frozenset()
    if op == Opcode.JMPR:
        return frozenset({instruction.a}), frozenset()
    if op == Opcode.RET:
        return frozenset({_ESP}), frozenset()
    if op == Opcode.ENTER:
        return frozenset({_ESP, _EBP}), frozenset({_ESP, _EBP})
    if op == Opcode.LEAVE:
        return frozenset({_EBP}), frozenset({_ESP, _EBP})
    if op == Opcode.ALLOC:
        return frozenset(b_reg), frozenset({_EAX})
    if op == Opcode.FREE:
        return frozenset({instruction.a}), frozenset()
    if op in (Opcode.OUT, Opcode.OUTB):
        return frozenset(b_reg), frozenset()
    # JMP, conditional jumps, HALT, NOP: flags only.
    return frozenset(), frozenset()


def _block_exit_fact(cfg: ProcedureCFG):
    def exit_fact(block: BasicBlock) -> frozenset[int]:
        if block.truncated:
            # Falls into foreign code: everything may be read there.
            return ALL_REGISTERS
        op = block.terminator.opcode
        if op == Opcode.RET:
            return _RETURN_LIVE
        if op == Opcode.JMPR:
            return ALL_REGISTERS
        if op == Opcode.HALT:
            return frozenset()
        # Direct jumps/branches whose target left the procedure.
        targets = block.successor_targets()
        if op in CONDITIONAL_JUMPS or op == Opcode.JMP:
            if any(target not in cfg.blocks for target in targets):
                return ALL_REGISTERS
        return frozenset()
    return exit_fact


def _transfer(block: BasicBlock,
              live_out: frozenset[int]) -> frozenset[int]:
    live = set(live_out)
    for pc, instruction in reversed(block.instructions):
        uses, defs = uses_and_defs(instruction)
        live -= defs
        live |= uses
    return frozenset(live)


class Liveness:
    """Per-instruction register liveness for one procedure."""

    def __init__(self, cfg: ProcedureCFG):
        self.cfg = cfg
        self._block_in = solve_backward(
            cfg, _block_exit_fact(cfg), _transfer,
            lambda a, b: a | b, frozenset())
        self._exit_fact = _block_exit_fact(cfg)
        self._per_pc: dict[int, tuple[frozenset[int],
                                      frozenset[int]]] = {}

    def _materialize_block(self, block: BasicBlock) -> None:
        live = self._exit_fact(block)
        for successor in self.cfg.edges.get(block.start, ()):
            if successor in self.cfg.blocks:
                live = live | self._block_in[successor]
        for pc, instruction in reversed(block.instructions):
            live_out = frozenset(live)
            uses, defs = uses_and_defs(instruction)
            live = (live - defs) | uses
            self._per_pc[pc] = (frozenset(live), live_out)

    def _lookup(self, pc: int) -> tuple[frozenset[int], frozenset[int]]:
        if pc not in self._per_pc:
            block = self.cfg.block_of(pc)
            if block is None:
                # Not in this procedure: everything may be live.
                return (ALL_REGISTERS, ALL_REGISTERS)
            self._materialize_block(block)
        return self._per_pc[pc]

    def live_in(self, pc: int) -> frozenset[int]:
        """Registers live immediately *before* the instruction at pc."""
        return self._lookup(pc)[0]

    def live_out(self, pc: int) -> frozenset[int]:
        """Registers live immediately *after* the instruction at pc."""
        return self._lookup(pc)[1]
