"""ClearView reproduction: automatically patching errors in deployed
software (Perkins et al., SOSP 2009).

Top-level convenience surface; the subpackages are the real API:

- :mod:`repro.vm` — the MiniX86 stripped-binary substrate
- :mod:`repro.dynamo` — managed execution, code cache, runtime patches
- :mod:`repro.monitors` — Memory Firewall, Heap Guard, Shadow Stack
- :mod:`repro.cfg` — procedure discovery and predominators
- :mod:`repro.learning` — invariant inference (the Daikon analogue)
- :mod:`repro.core` — correlation, repair generation/evaluation, the
  ClearView manager
- :mod:`repro.community` — application communities
- :mod:`repro.apps` / :mod:`repro.redteam` — the WebBrowse target and
  the Red Team exercise
"""

from repro.core.clearview import ClearView, ClearViewConfig
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
)
from repro.learning.harness import learn
from repro.vm.assembler import assemble

__version__ = "1.0.0"

__all__ = [
    "ClearView", "ClearViewConfig", "EnvironmentConfig",
    "ManagedEnvironment", "Outcome", "learn", "assemble", "__version__",
]
