"""Candidate repair evaluation (§2.6).

ClearView continuously observes patched applications.  A repair succeeds
on a run when the application neither crashes nor re-detects the repair's
failure; it fails when the failure recurs or the application crashes.
Scores follow the paper's formula ``(s - f) + b`` where ``b`` is a bonus
granted while a repair has never failed, so the policy hunts for a repair
that *always* works.  Ties break by the §2.6 static priority: earlier
instructions first (lower stack distance, then lower address), then
state-only repairs before control-flow repairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.repair import CandidateRepair

#: The never-failed bonus ``b``. Any positive value implements the paper's
#: policy; 1 keeps scores small and readable.
NEVER_FAILED_BONUS = 1


@dataclass
class ScoredRepair:
    """A candidate repair with its evaluation record."""

    candidate: CandidateRepair
    successes: int = 0
    failures: int = 0
    #: Times this repair was withdrawn fleet-wide *after* deployment
    #: (post-deployment surveillance turned its health record bad).
    revocations: int = 0
    #: Flap damping / toxic containment: a blacklisted repair is never
    #: selected again this session, no matter its score.
    blacklisted: bool = False

    @property
    def score(self) -> int:
        bonus = NEVER_FAILED_BONUS if self.failures == 0 else 0
        return (self.successes - self.failures) + bonus

    @property
    def never_failed(self) -> bool:
        return self.failures == 0

    def sort_key(self) -> tuple:
        # §2.6: "since the goal is to find a repair that always works,
        # the scoring system is designed to reward repairs that are
        # always successful. If a repair ever fails, the system
        # continues to search for a more successful repair." The
        # never-failed bonus is therefore a strict *tier*: any repair
        # that has never failed ranks above every repair that has —
        # regardless of how many ambient successes the failed repair
        # accumulated while other traffic flowed. Within a tier, higher
        # (s - f) first, then the static §2.6 priority.
        return ((0 if self.never_failed else 1),
                -(self.successes - self.failures)) + \
            self.candidate.priority()


class RepairEvaluator:
    """Ranks candidate repairs and tracks their evaluation (§2.6)."""

    def __init__(self, candidates: list[CandidateRepair]):
        self.scored = [ScoredRepair(candidate=candidate)
                       for candidate in candidates]
        self.evaluations = 0

    def __len__(self) -> int:
        return len(self.scored)

    def best(self) -> ScoredRepair | None:
        """The repair to apply now: highest score, §2.6 tie-breaks.

        Blacklisted repairs (revoked twice, or toxic to community
        members) are never selected; returns None once every candidate
        is blacklisted — the session is out of viable repairs.
        """
        eligible = [repair for repair in self.scored
                    if not repair.blacklisted]
        if not eligible:
            return None
        return min(eligible, key=ScoredRepair.sort_key)

    def blacklist(self, repair: ScoredRepair) -> None:
        """Permanently exclude *repair* from selection this session."""
        repair.blacklisted = True

    def record_success(self, repair: ScoredRepair) -> None:
        repair.successes += 1
        self.evaluations += 1

    def record_failure(self, repair: ScoredRepair) -> None:
        repair.failures += 1
        self.evaluations += 1

    def ranking(self) -> list[ScoredRepair]:
        """All repairs, best first."""
        return sorted(self.scored, key=ScoredRepair.sort_key)

    def counts(self) -> tuple[int, int]:
        """(total successes, total failures) across all repairs."""
        return (sum(repair.successes for repair in self.scored),
                sum(repair.failures for repair in self.scored))
