"""Invariant-check patches (§2.4.2).

These patches do not repair anything: they observe.  Each execution of a
check patch produces an observation — (failure, invariant, satisfied or
violated) — which the correlation machinery aggregates into the
highly/moderately/slightly/not-correlated classification.

Single-variable invariants are checked at the variable's instruction.
Two-variable invariants are checked at the *second* instruction to
execute, with an auxiliary patch at the first instruction capturing the
first variable's value for later retrieval.

Check patches dispatch through the patch manager's pc-anchored routing:
deploying checks for a failure perturbs only the anchored instructions,
and withdrawing them after classification (§2.4.3) returns the
application to anchor-free execution — the reproduction's analogue of
the paper's "temporarily increased overhead during repair search".
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

from repro.dynamo.patches import Patch
from repro.learning.invariants import Invariant, LessThan
from repro.learning.variables import (
    Variable,
    read_variable_value,
    slot_placement,
)
from repro.vm.cpu import CPU
from repro.vm.isa import Instruction


@dataclass
class Observation:
    """One invariant check execution."""

    failure_id: str
    invariant: Invariant
    satisfied: bool


class ObservationSink:
    """Receives observations from check patches during a run.

    The ClearView manager owns one sink; at run end it folds the buffered
    sequence into its per-(failure, invariant) history.
    """

    def __init__(self):
        self.buffer: list[Observation] = []

    def record(self, observation: Observation) -> None:
        self.buffer.append(observation)

    def drain(self) -> list[Observation]:
        drained, self.buffer = self.buffer, []
        return drained


_capture_ids = itertools.count(1)


def _next_capture_id() -> str:
    # Pid-qualified so ids minted in different processes can never collide
    # inside a worker's capture registry.
    return f"{os.getpid()}-{next(_capture_ids)}"


@dataclass
class ValueCapture:
    """Shared cell carrying a first variable's value to a later check.

    The ``capture_id`` is the cell's wire identity: patches serialized for
    a process-sharded member reference their capture cell by id, and the
    worker re-links every patch naming the same id to one local cell —
    preserving the capture/check sharing that in-process execution gets
    from plain object identity.
    """

    value: int | None = None
    fresh: bool = False
    capture_id: str = field(default_factory=_next_capture_id, compare=False)


@dataclass
class CapturePatch(Patch):
    """Auxiliary patch: store a variable's value for a later check (§2.4.2)."""

    variable: Variable = field(default=Variable(0, "?"))
    capture: ValueCapture = field(default_factory=ValueCapture)

    def execute(self, cpu: CPU, instruction: Instruction) -> int | None:
        value = read_variable_value(cpu, self.pc, instruction,
                                    self.variable.slot, self.when)
        if value is not None:
            self.capture.value = value
            self.capture.fresh = True
        return None


@dataclass
class CheckPatch(Patch):
    """Evaluate an invariant and emit an observation; never intervenes."""

    invariant: Invariant = None  # type: ignore[assignment]
    sink: ObservationSink = None  # type: ignore[assignment]
    #: For two-variable invariants: the capture cell holding the first
    #: variable's value.
    capture: ValueCapture | None = None

    def execute(self, cpu: CPU, instruction: Instruction) -> int | None:
        values = self._gather(cpu, instruction)
        if values is None:
            return None
        self.sink.record(Observation(
            failure_id=self.failure_id,
            invariant=self.invariant,
            satisfied=self.invariant.holds(values)))
        return None

    def _gather(self, cpu: CPU,
                instruction: Instruction) -> dict[Variable, int] | None:
        values: dict[Variable, int] = {}
        if isinstance(self.invariant, LessThan):
            earlier, later = order_by_pc(self.invariant)
            if self.capture is None or self.capture.value is None:
                # The first variable has not executed yet this run; the
                # invariant cannot be evaluated at this point.
                return None
            values[earlier] = self.capture.value
            value = read_variable_value(cpu, self.pc, instruction,
                                        later.slot, self.when)
            if value is None:
                return None
            values[later] = value
            return values
        variable = self.invariant.variables()[0]
        value = read_variable_value(cpu, self.pc, instruction,
                                    variable.slot, self.when)
        if value is None:
            return None
        values[variable] = value
        return values


def order_by_pc(invariant: LessThan) -> tuple[Variable, Variable]:
    """(earlier, later) execution order of a two-variable invariant.

    The check/enforcement point is the *later* instruction (§2.4.2); an
    auxiliary capture runs at the earlier one.
    """
    left, right = invariant.variables()
    if left.pc <= right.pc:
        return left, right
    return right, left


def build_check_patches(invariant: Invariant, failure_id: str,
                        sink: ObservationSink, decode) -> list[Patch]:
    """Create the patch set that checks *invariant* (§2.4.2).

    Returns one patch for single-variable invariants, two (capture +
    check) for two-variable invariants.  ``decode`` maps a pc to its
    :class:`~repro.vm.isa.Instruction` (normally
    ``binary.decode_at``); it determines each patch's before/after
    placement from the slot kind.
    """
    variables = invariant.variables()
    if isinstance(invariant, LessThan):
        capture = ValueCapture()
        earlier, later = order_by_pc(invariant)
        return [
            CapturePatch(pc=earlier.pc, failure_id=failure_id,
                         variable=earlier, capture=capture,
                         when=slot_placement(decode(earlier.pc),
                                             earlier.slot),
                         description=f"capture {earlier}"),
            CheckPatch(pc=later.pc, failure_id=failure_id,
                       invariant=invariant, sink=sink, capture=capture,
                       when=slot_placement(decode(later.pc), later.slot),
                       description=f"check {invariant.pretty()}"),
        ]
    variable = variables[0]
    return [CheckPatch(pc=variable.pc, failure_id=failure_id,
                       invariant=invariant, sink=sink,
                       when=slot_placement(decode(variable.pc),
                                           variable.slot),
                       description=f"check {invariant.pretty()}")]
