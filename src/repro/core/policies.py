"""Adaptive monitoring policies (§2.3, §3.2).

The Red Team exercise ran with Heap Guard and the Shadow Stack always
enabled, but the paper points out the alternative both sections sketch:
run production with only Memory Firewall (the cheapest monitor), switch
the expensive monitors on when a failure indicates elevated risk, and
switch them back off once a patch has proven itself or the community has
been quiet for a while.  This module implements that policy around a
ClearView manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clearview import ClearView, SessionState
from repro.dynamo.execution import Outcome, RunResult


@dataclass
class AdaptivePolicyConfig:
    """Policy knobs.

    ``quiet_runs_to_relax``: consecutive completed runs (with no session
    in active repair) before the expensive monitors are disabled again.
    """

    quiet_runs_to_relax: int = 25


@dataclass
class AdaptiveProtection:
    """Drives an environment's monitor configuration from failure state.

    Wraps a :class:`~repro.core.clearview.ClearView`; call :meth:`run`
    instead of ``clearview.run``.  The wrapped environment starts in the
    cheap configuration (Memory Firewall only); any failure escalates to
    the full configuration, and a quiet streak de-escalates.

    Toggling monitors between runs models the paper's "enable and
    disable ... as the application executes without otherwise perturbing
    the execution": our environment instantiates monitors per launched
    instance, so the switch simply applies from the next launch on.
    """

    clearview: ClearView
    config: AdaptivePolicyConfig = field(
        default_factory=AdaptivePolicyConfig)
    escalations: int = 0
    relaxations: int = 0
    _quiet_streak: int = 0

    def __post_init__(self):
        self._relax()

    # -- state queries ---------------------------------------------------

    @property
    def elevated(self) -> bool:
        """True while the expensive monitors are enabled."""
        environment_config = self.clearview.environment.config
        return environment_config.heap_guard or \
            environment_config.shadow_stack

    def _sessions_active(self) -> bool:
        return any(session.state in (SessionState.CHECKING,
                                     SessionState.EVALUATING)
                   for session in self.clearview.sessions.values())

    # -- transitions -------------------------------------------------------

    def _escalate(self) -> None:
        environment_config = self.clearview.environment.config
        if not (environment_config.heap_guard and
                environment_config.shadow_stack):
            self.escalations += 1
        environment_config.heap_guard = True
        environment_config.shadow_stack = True
        self._quiet_streak = 0

    def _relax(self) -> None:
        environment_config = self.clearview.environment.config
        environment_config.memory_firewall = True
        if environment_config.heap_guard or \
                environment_config.shadow_stack:
            self.relaxations += 1
        environment_config.heap_guard = False
        environment_config.shadow_stack = False

    # -- the run loop -------------------------------------------------------

    def run(self, payload: bytes) -> RunResult:
        result = self.clearview.run(payload)
        if result.outcome is not Outcome.COMPLETED:
            self._escalate()
        elif self.elevated and not self._sessions_active():
            self._quiet_streak += 1
            if self._quiet_streak >= self.config.quiet_runs_to_relax:
                self._relax()
        return result
