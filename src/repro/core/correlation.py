"""Correlated invariant identification (§2.4).

Given a failure location (and, when available, the shadow call stack),
select candidate invariants from the learned model, and — once invariant
check observations have been collected over repeated attacks — classify
each candidate as highly / moderately / slightly / not correlated with the
failure (§2.4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cfg.discovery import ProcedureDatabase
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import Invariant, LessThan, SPOffset


class Correlation(enum.IntEnum):
    """§2.4.3 classification, ordered strongest first."""

    HIGHLY = 0
    MODERATELY = 1
    SLIGHTLY = 2
    NOT = 3


@dataclass
class CandidateInvariant:
    """A candidate correlated invariant plus where it came from."""

    invariant: Invariant
    #: 0 = the procedure containing the failure, 1 = its caller, ...
    stack_distance: int
    procedure_entry: int


@dataclass
class CorrelationConfig:
    """Knobs for candidate selection.

    ``stack_procedures`` is the Red Team configuration issue behind
    exploit 285595: during the exercise only the lowest procedure on the
    stack with invariants was considered (value 1); considering more
    procedures (value >= 2) enables the successful patch.
    ``block_restriction`` is the §2.4.1 optimization restricting
    two-variable invariants to the failure instruction's basic block.
    """

    stack_procedures: int = 1
    block_restriction: bool = True


def candidate_correlated_invariants(
        database: InvariantDatabase,
        procedures: ProcedureDatabase,
        failure_pc: int,
        call_sites: tuple[int, ...] = (),
        config: CorrelationConfig | None = None
        ) -> list[CandidateInvariant]:
    """Select candidate correlated invariants for a failure (§2.4.1).

    For the procedure containing the failure, candidates are invariants at
    predominators of the failure instruction.  For each caller on the
    (shadow) stack, candidates are invariants at predominators of the call
    site.  Only the first ``config.stack_procedures`` procedures that
    yield any invariants are used.
    """
    config = config or CorrelationConfig()
    # Innermost first: the failure pc, then the call sites walking out.
    # call_sites is innermost-last, so reverse it.
    points = [failure_pc] + [pc for pc in reversed(call_sites)]

    candidates: list[CandidateInvariant] = []
    procedures_used = 0
    for distance, point in enumerate(points):
        if procedures_used >= config.stack_procedures:
            break
        procedure = procedures.procedure_of(point)
        if procedure is None:
            continue
        found = _candidates_in_procedure(
            database, procedure, point, distance,
            block_restriction=config.block_restriction)
        if found:
            candidates.extend(found)
            procedures_used += 1
    return candidates


def _candidates_in_procedure(database: InvariantDatabase, procedure,
                             point: int, distance: int,
                             block_restriction: bool
                             ) -> list[CandidateInvariant]:
    block = procedure.block_of(point)
    candidates: list[CandidateInvariant] = []
    for pc in procedure.predominators(point):
        for invariant in database.invariants_at(pc):
            if isinstance(invariant, SPOffset):
                continue  # structural, not checkable
            if isinstance(invariant, LessThan) and block_restriction:
                # §2.4.1: two-variable invariants only from the failure
                # instruction's own basic block.
                if block is None or not all(
                        block.contains(variable.pc)
                        for variable in invariant.variables()):
                    continue
            candidates.append(CandidateInvariant(
                invariant=invariant, stack_distance=distance,
                procedure_entry=procedure.entry))
    return candidates


@dataclass
class ObservationHistory:
    """Per-(failure, invariant) record of check observations (§2.4.2-3).

    ``runs`` holds one boolean sequence per completed run in which the
    invariant was checked at least once; ``failure_runs`` flags which of
    those runs ended with the failure being detected again.
    """

    runs: list[list[bool]] = field(default_factory=list)
    failure_runs: list[bool] = field(default_factory=list)

    def add_run(self, sequence: list[bool], ended_in_failure: bool) -> None:
        if sequence:
            self.runs.append(sequence)
            self.failure_runs.append(ended_in_failure)

    def failure_sequences(self) -> list[list[bool]]:
        return [sequence for sequence, failed
                in zip(self.runs, self.failure_runs) if failed]


def classify(history: ObservationHistory) -> Correlation:
    """Classify one invariant against one failure per §2.4.3.

    - **Highly**: on every failure run, violated at the last check and
      satisfied at all earlier checks.
    - **Moderately**: on every failure run violated at the last check,
      and on at least one failure run also violated earlier.
    - **Slightly**: violated at least once during at least one failure run.
    - **Not**: never violated.
    """
    sequences = history.failure_sequences()
    if not sequences:
        return Correlation.NOT
    violated_anywhere = any(not ok for sequence in sequences
                            for ok in sequence)
    if not violated_anywhere:
        return Correlation.NOT
    last_always_violated = all(not sequence[-1] for sequence in sequences)
    if last_always_violated:
        earlier_all_satisfied = all(all(sequence[:-1])
                                    for sequence in sequences)
        if earlier_all_satisfied:
            return Correlation.HIGHLY
        return Correlation.MODERATELY
    return Correlation.SLIGHTLY


def select_for_repair(
        classified: dict[Invariant, Correlation]
        ) -> tuple[list[Invariant], Correlation | None]:
    """Pick the invariants to enforce (§2.5): highly correlated ones if any
    exist, otherwise moderately correlated ones, otherwise nothing."""
    highly = [invariant for invariant, rank in classified.items()
              if rank is Correlation.HIGHLY]
    if highly:
        return highly, Correlation.HIGHLY
    moderately = [invariant for invariant, rank in classified.items()
                  if rank is Correlation.MODERATELY]
    if moderately:
        return moderately, Correlation.MODERATELY
    return [], None
