"""ClearView core: correlation, repair generation, evaluation, manager."""

from repro.core.checks import (
    CheckPatch,
    Observation,
    ObservationSink,
    build_check_patches,
)
from repro.core.clearview import (
    ClearView,
    ClearViewConfig,
    FailureSession,
    PhaseTimes,
    SessionState,
)
from repro.core.correlation import (
    CandidateInvariant,
    Correlation,
    CorrelationConfig,
    ObservationHistory,
    candidate_correlated_invariants,
    classify,
    select_for_repair,
)
from repro.core.evaluation import (
    NEVER_FAILED_BONUS,
    RepairEvaluator,
    ScoredRepair,
)
from repro.core.repair import (
    CandidateRepair,
    RepairAction,
    build_repair_patch,
    generate_candidate_repairs,
)
from repro.core.clusters import (
    BlockClusters,
    BlockCoverageRecorder,
    cluster_candidates,
)
from repro.core.policies import AdaptivePolicyConfig, AdaptiveProtection
from repro.core.reports import (
    FailureReport,
    RepairReport,
    report_all,
    report_session,
    summarize,
)

__all__ = [
    "CheckPatch", "Observation", "ObservationSink", "build_check_patches",
    "ClearView", "ClearViewConfig", "FailureSession", "PhaseTimes",
    "SessionState",
    "CandidateInvariant", "Correlation", "CorrelationConfig",
    "ObservationHistory", "candidate_correlated_invariants", "classify",
    "select_for_repair",
    "NEVER_FAILED_BONUS", "RepairEvaluator", "ScoredRepair",
    "CandidateRepair", "RepairAction", "build_repair_patch",
    "generate_candidate_repairs",
    "FailureReport", "RepairReport", "report_all", "report_session",
    "summarize",
    "BlockClusters", "BlockCoverageRecorder", "cluster_candidates",
    "AdaptivePolicyConfig", "AdaptiveProtection",
]
