"""Candidate repair generation (§2.5).

Each repair enforces one correlated invariant: the patch first checks the
invariant and, only if it is violated, changes register state or control
flow to make it true.  The repair menu follows the paper exactly:

*one-of* ``v in {c1..cn}`` (§2.5.1):
  - ``v = ci`` for each observed value (state repair);
  - if ``v`` is an indirect call target: *skip the call*;
  - *return immediately from the enclosing procedure* (stack pointer
    restored via the learned sp-offset invariant).

*lower-bound* ``c <= v`` (§2.5.2): ``v = c``.

*less-than* ``v1 <= v2`` (§2.5.3): ``v1 = v2`` or ``v2 = v1``.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field

from repro.dynamo.patches import Patch
from repro.core.checks import ValueCapture, order_by_pc
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import (
    Invariant,
    LessThan,
    LowerBound,
    OneOf,
)
from repro.learning.variables import (
    Variable,
    read_variable_value,
    slot_placement,
    writable_register,
)
from repro.monitors.shadow_stack import ShadowStack
from repro.vm.binary import Binary
from repro.vm.cpu import CPU
from repro.vm.isa import (
    INSTRUCTION_SIZE,
    WORD_SIZE,
    Instruction,
    Opcode,
    Register,
)


class RepairAction(enum.IntEnum):
    """How a repair intervenes; the order is the §2.6 control-flow
    tie-break rank (state changes before control flow changes)."""

    SET_VALUE = 0
    SKIP_CALL = 1
    RETURN_FROM_PROCEDURE = 2


@dataclass
class RepairPatch(Patch):
    """Base enforcement patch: check the invariant, intervene if violated.

    Subclasses implement :meth:`enforce`.  ``fired`` counts how many times
    the repair actually intervened (it is a no-op on normal executions, by
    construction — the key to ClearView's low false-positive impact).
    """

    invariant: Invariant = None  # type: ignore[assignment]
    action: RepairAction = RepairAction.SET_VALUE
    capture: ValueCapture | None = None
    fired: int = 0

    def execute(self, cpu: CPU, instruction: Instruction) -> int | None:
        values = self._current_values(cpu, instruction)
        if values is None or self.invariant.holds(values):
            return None
        self.fired += 1
        return self.enforce(cpu, instruction, values)

    def enforce(self, cpu: CPU, instruction: Instruction,
                values: dict[Variable, int]) -> int | None:
        raise NotImplementedError

    def _current_values(self, cpu: CPU, instruction: Instruction
                        ) -> dict[Variable, int] | None:
        variables = self.invariant.variables()
        if isinstance(self.invariant, LessThan):
            earlier, later = order_by_pc(self.invariant)
            if self.capture is None or self.capture.value is None:
                return None
            later_value = read_variable_value(cpu, self.pc, instruction,
                                              later.slot, self.when)
            if later_value is None:
                return None
            return {earlier: self.capture.value, later: later_value}
        value = read_variable_value(cpu, self.pc, instruction,
                                    variables[0].slot, self.when)
        if value is None:
            return None
        return {variables[0]: value}


@dataclass
class SetValueRepair(RepairPatch):
    """``if !inv then var = value`` — write the variable's register."""

    target_register: int = 0
    value: int = 0

    def enforce(self, cpu: CPU, instruction: Instruction,
                values: dict[Variable, int]) -> int | None:
        cpu.set_register(self.target_register, self.value)
        return None

    def register_writes(self) -> frozenset[int]:
        return frozenset({self.target_register})


@dataclass
class SetFromVariableRepair(RepairPatch):
    """``if !(v1 <= v2) then v_adjust = v_other`` for less-than repairs.

    ``adjust_left`` selects which side is overwritten: True writes v1's
    register with v2's value, False writes v2's register with v1's value.
    """

    target_register: int = 0
    adjust_left: bool = True

    def enforce(self, cpu: CPU, instruction: Instruction,
                values: dict[Variable, int]) -> int | None:
        left, right = self.invariant.variables()
        source = values[right] if self.adjust_left else values[left]
        cpu.set_register(self.target_register, source)
        return None

    def register_writes(self) -> frozenset[int]:
        return frozenset({self.target_register})


@dataclass
class SkipCallRepair(RepairPatch):
    """``if inv then call *v`` — i.e. skip the call when violated (§2.5.1).

    Redirecting before the CALLR executes skips both the control transfer
    and the return-address push; with the caller-cleans-stack convention
    no further stack adjustment is needed.
    """

    def enforce(self, cpu: CPU, instruction: Instruction,
                values: dict[Variable, int]) -> int | None:
        return self.pc + INSTRUCTION_SIZE


@dataclass
class ReturnFromProcedureRepair(RepairPatch):
    """``if !inv then return`` — unwind the enclosing procedure (§2.5.1).

    The stack pointer is restored using the learned sp-offset invariant
    (``sp_here = sp_entry + offset``); if none was learned, the shadow
    stack's record of the entry stack pointer is used instead.  The
    procedure's return value register (EAX) is zeroed, the conventional
    "benign" result.
    """

    sp_offset: int | None = None

    def enforce(self, cpu: CPU, instruction: Instruction,
                values: dict[Variable, int]) -> int | None:
        sp_entry = self._entry_sp(cpu)
        if sp_entry is None:
            return None  # Cannot unwind safely; decline to intervene.
        return_address = cpu.memory.read_word(sp_entry)
        # "Other cleanup" (§2.5.1): restore the caller's frame pointer.
        # With the ENTER/LEAVE convention, the current frame pointer
        # addresses the saved caller EBP.
        ebp = cpu.registers[Register.EBP]
        if ebp == sp_entry - WORD_SIZE:
            # The procedure set up an ENTER frame: undo it.
            cpu.set_register(Register.EBP, cpu.memory.read_word(ebp))
        cpu.set_register(Register.ESP, sp_entry + WORD_SIZE)
        cpu.set_register(Register.EAX, 0)
        return return_address

    def register_writes(self) -> frozenset[int]:
        return frozenset({int(Register.ESP), int(Register.EBP),
                          int(Register.EAX)})

    def _entry_sp(self, cpu: CPU) -> int | None:
        if self.sp_offset is not None:
            return (cpu.registers[Register.ESP] - self.sp_offset) \
                & 0xFFFFFFFF
        for hook in cpu.hooks:
            if isinstance(hook, ShadowStack):
                frame = hook.current_frame()
                if frame is not None:
                    return frame.sp_at_entry
        return None


@dataclass
class CandidateRepair:
    """One candidate repair: the invariant, the strategy, and metadata the
    evaluation policy (§2.6) ranks on."""

    invariant: Invariant
    action: RepairAction
    #: Distance up the call stack from the failing procedure (0 = the
    #: procedure containing the failure; §2.6's "lower on the call stack").
    stack_distance: int = 0
    #: Correlation class rank (0 = highly, 1 = moderately).
    correlation_rank: int = 0
    #: Disambiguates multiple same-action repairs (e.g. per one-of value).
    variant: int = 0
    #: Factory detail: the concrete enforcement value, if any.
    value: int | None = None
    description: str = ""
    #: Optional custom compiler ``(binary, candidate, failure_id,
    #: database) -> list[Patch]`` overriding the standard §2.5 menu —
    #: server-side only (never serialized); used by the adversarial
    #: chaos harness to inject arbitrary patch bodies into the pool.
    builder: "typing.Callable | None" = \
        field(default=None, repr=False, compare=False)
    #: The adversarial kind a chaos-manufactured candidate embodies
    #: (None for legitimate candidates) — lets tests and reports align
    #: a vet verdict with the fault it should have caught.
    chaos_kind: str | None = field(default=None, repr=False,
                                   compare=False)

    def priority(self) -> tuple:
        """Static tie-break key (§2.6): earlier instructions first (lower
        stack distance, then lower pc), then state-only repairs before
        control-flow repairs."""
        return (self.correlation_rank, self.stack_distance,
                self.invariant.check_pc, int(self.action), self.variant)


def generate_candidate_repairs(
        binary: Binary, invariant: Invariant,
        stack_distance: int = 0, correlation_rank: int = 0,
        database: InvariantDatabase | None = None) -> list[CandidateRepair]:
    """The §2.5 repair menu for one correlated invariant."""
    candidates: list[CandidateRepair] = []

    def add(action: RepairAction, variant: int = 0,
            value: int | None = None, description: str = "") -> None:
        candidates.append(CandidateRepair(
            invariant=invariant, action=action,
            stack_distance=stack_distance,
            correlation_rank=correlation_rank, variant=variant,
            value=value, description=description))

    if isinstance(invariant, OneOf):
        variable = invariant.variable
        instruction = binary.decode_at(variable.pc)
        register = writable_register(instruction, variable.slot)
        if register is not None:
            for index, value in enumerate(sorted(invariant.values)):
                add(RepairAction.SET_VALUE, variant=index, value=value,
                    description=f"if !({invariant.pretty()}) then "
                                f"{variable} = {value}")
        if instruction.opcode == Opcode.CALLR and variable.slot == "target":
            add(RepairAction.SKIP_CALL,
                description=f"skip call unless {invariant.pretty()}")
        # Return-from-enclosing-procedure: usable for any invariant, but
        # ClearView currently applies it only to one-of (§2.5.1).
        add(RepairAction.RETURN_FROM_PROCEDURE,
            description=f"return from procedure unless "
                        f"{invariant.pretty()}")
    elif isinstance(invariant, LowerBound):
        variable = invariant.variable
        instruction = binary.decode_at(variable.pc)
        register = writable_register(instruction, variable.slot)
        if register is not None:
            add(RepairAction.SET_VALUE, value=invariant.bound,
                description=f"if !({invariant.pretty()}) then "
                            f"{variable} = {invariant.bound}")
    elif isinstance(invariant, LessThan):
        left, right = invariant.variables()
        check_instruction = binary.decode_at(right.pc)
        left_instruction = binary.decode_at(left.pc)
        left_register = writable_register(left_instruction, left.slot)
        right_register = writable_register(check_instruction, right.slot)
        if left_register is not None:
            add(RepairAction.SET_VALUE, variant=0,
                description=f"if !({invariant.pretty()}) then "
                            f"{left} = {right}")
        if right_register is not None:
            add(RepairAction.SET_VALUE, variant=1,
                description=f"if !({invariant.pretty()}) then "
                            f"{right} = {left}")
    return candidates


def build_repair_patch(binary: Binary, candidate: CandidateRepair,
                       failure_id: str,
                       database: InvariantDatabase | None = None,
                       capture: ValueCapture | None = None
                       ) -> list[Patch]:
    """Compile a :class:`CandidateRepair` into executable patches.

    For two-variable invariants the result includes the auxiliary capture
    patch.  ``database`` supplies sp-offset invariants for return repairs.
    """
    if candidate.builder is not None:
        return candidate.builder(binary, candidate, failure_id, database)
    invariant = candidate.invariant
    pc = invariant.check_pc
    instruction = binary.decode_at(pc)
    patches: list[Patch] = []

    if isinstance(invariant, LessThan):
        from repro.core.checks import CapturePatch
        left, right = invariant.variables()
        earlier, later = order_by_pc(invariant)
        capture = capture or ValueCapture()
        patches.append(CapturePatch(
            pc=earlier.pc, failure_id=failure_id, variable=earlier,
            capture=capture,
            when=slot_placement(binary.decode_at(earlier.pc), earlier.slot),
            description=f"capture {earlier}"))
        adjust_left = candidate.variant == 0
        adjusted = left if adjust_left else right
        register = writable_register(binary.decode_at(adjusted.pc),
                                     adjusted.slot)
        if register is None:
            raise ValueError(
                f"less-than repair target is not register-backed: "
                f"{candidate.description}")
        patches.append(SetFromVariableRepair(
            pc=pc, failure_id=failure_id, invariant=invariant,
            action=candidate.action, capture=capture,
            target_register=register, adjust_left=adjust_left,
            when=slot_placement(instruction, later.slot),
            description=candidate.description))
        return patches

    variable = invariant.variables()[0]
    when = slot_placement(instruction, variable.slot)
    if candidate.action is RepairAction.SET_VALUE:
        register = writable_register(instruction, variable.slot)
        if register is None:
            raise ValueError(
                f"set-value repair target is not register-backed: "
                f"{candidate.description}")
        assert candidate.value is not None
        patches.append(SetValueRepair(
            pc=pc, failure_id=failure_id, invariant=invariant,
            action=candidate.action, target_register=register,
            value=candidate.value, when=when,
            description=candidate.description))
    elif candidate.action is RepairAction.SKIP_CALL:
        patches.append(SkipCallRepair(
            pc=pc, failure_id=failure_id, invariant=invariant,
            action=candidate.action, when="before",
            description=candidate.description))
    elif candidate.action is RepairAction.RETURN_FROM_PROCEDURE:
        sp_offset = None
        if database is not None:
            learned = database.sp_offset_at(pc)
            if learned is not None:
                sp_offset = learned.offset
        patches.append(ReturnFromProcedureRepair(
            pc=pc, failure_id=failure_id, invariant=invariant,
            action=candidate.action, sp_offset=sp_offset, when=when,
            description=candidate.description))
    else:  # pragma: no cover - exhaustive
        raise ValueError(f"unknown action {candidate.action}")
    return patches
