"""Maintainer-facing correction reports.

§1: "ClearView supports this activity by providing information about the
failure, specifically the location where it detected the failure, the
correlated invariants, the strategy that each candidate repair patch used
to enforce the invariant, and information about the effectiveness of each
patch."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clearview import ClearView, FailureSession, SessionState
from repro.core.correlation import Correlation


@dataclass
class RepairReport:
    """Effectiveness record for one candidate repair."""

    description: str
    action: str
    successes: int
    failures: int
    score: int
    applied: bool


@dataclass
class FailureReport:
    """Everything a maintainer gets about one failure."""

    failure_id: str
    failure_pc: int
    monitor: str
    state: str
    presentations: int
    correlated_invariants: list[tuple[str, str]] = field(default_factory=list)
    repairs: list[RepairReport] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Disassembly around the failure location (when a binary was given).
    listing: str = ""

    def format(self) -> str:
        lines = [f"Failure {self.failure_id} (state: {self.state}, "
                 f"{self.presentations} presentations)"]
        if self.listing:
            lines.append("  Failure context:")
            for row in self.listing.splitlines():
                lines.append(f"    {row}")
        if self.correlated_invariants:
            lines.append("  Correlated invariants:")
            for pretty, rank in self.correlated_invariants:
                lines.append(f"    [{rank}] {pretty}")
        if self.repairs:
            lines.append("  Candidate repairs (best first):")
            for repair in self.repairs:
                marker = "*" if repair.applied else " "
                lines.append(
                    f"   {marker} score={repair.score:+d} "
                    f"s={repair.successes} f={repair.failures} "
                    f"[{repair.action}] {repair.description}")
        lines.append("  Phase times (s): " + ", ".join(
            f"{phase}={seconds:.3f}"
            for phase, seconds in self.phase_seconds.items()))
        return "\n".join(lines)


def report_session(session: FailureSession,
                   binary=None) -> FailureReport:
    """Build the report for one failure session.

    *binary* (optional) enables the disassembled failure-context
    listing — pass the protected application's binary image.
    """
    listing = ""
    if binary is not None:
        from repro.vm.disasm import context_listing
        listing = context_listing(binary, session.failure_pc)
    correlated = [
        (invariant.pretty(), rank.name.lower())
        for invariant, rank in session.classification.items()
        if rank in (Correlation.HIGHLY, Correlation.MODERATELY,
                    Correlation.SLIGHTLY)]
    repairs: list[RepairReport] = []
    if session.evaluator is not None:
        for scored in session.evaluator.ranking():
            repairs.append(RepairReport(
                description=scored.candidate.description,
                action=scored.candidate.action.name.lower(),
                successes=scored.successes,
                failures=scored.failures,
                score=scored.score,
                applied=(scored is session.current_repair)))
    times = session.times
    return FailureReport(
        failure_id=session.failure_id,
        failure_pc=session.failure_pc,
        monitor=session.monitor,
        state=session.state.value,
        presentations=session.presentations,
        correlated_invariants=correlated,
        repairs=repairs,
        listing=listing,
        phase_seconds={
            "detect_run": times.detect_run,
            "build_checks": times.build_checks,
            "install_checks": times.install_checks,
            "check_runs": times.check_runs,
            "build_repairs": times.build_repairs,
            "install_repairs": times.install_repairs,
            "unsuccessful_repair_runs": times.unsuccessful_repair_runs,
            "successful_repair_run": times.successful_repair_run,
            "total": times.total(),
        })


def report_all(clearview: ClearView) -> list[FailureReport]:
    """Reports for every failure ClearView has handled, by location."""
    binary = clearview.environment.binary
    return [report_session(session, binary=binary)
            for _, session in sorted(clearview.sessions.items())]


def summarize(clearview: ClearView) -> str:
    """One-paragraph status: how many failures seen / patched / blocked."""
    sessions = list(clearview.sessions.values())
    patched = sum(1 for session in sessions
                  if session.state is SessionState.PATCHED)
    evaluating = sum(1 for session in sessions
                     if session.state is SessionState.EVALUATING)
    exhausted = sum(1 for session in sessions
                    if session.state is SessionState.EXHAUSTED)
    return (f"{len(sessions)} failure(s) observed: {patched} patched, "
            f"{evaluating} under repair evaluation, {exhausted} blocked "
            f"without a patch.")
