"""The ClearView manager: the full learn-from-failure state machine.

Drives the Figure 1 pipeline for one protected application instance:

1. a monitor detects a failure (run outcome FAILURE with a location);
2. ClearView selects candidate correlated invariants near the failure and
   installs invariant-*check* patches (§2.4.1-2);
3. over the next attacks it records check observations; after the second
   failure with checks in place it removes the checks and classifies the
   candidates (§2.4.3);
4. it generates candidate repairs for the most correlated invariants and
   applies the best-ranked one (§2.5, §2.6);
5. it keeps evaluating: a repair's failure demotes it and promotes the
   next candidate; successes raise its score; proven patches stay under
   continuous evaluation and can be discarded later.

Presentation accounting matches Table 1: the minimum number of attack
presentations to a successful patch is four (detect, two check runs, one
successful repair run), and each notification triggers exactly one manager
response — in particular, a *new* failure surfacing during the run that
proved another failure's repair is consumed as that repair's evaluation
feedback, and opens its own session only at its next occurrence (this is
what makes the three-defect exploit analogue take 12 presentations).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.cfg.discovery import ProcedureDatabase
from repro.core.checks import ObservationSink, build_check_patches
from repro.core.correlation import (
    CandidateInvariant,
    Correlation,
    CorrelationConfig,
    ObservationHistory,
    candidate_correlated_invariants,
    classify,
    select_for_repair,
)
from repro.core.evaluation import RepairEvaluator, ScoredRepair
from repro.core.repair import (
    CandidateRepair,
    build_repair_patch,
    generate_candidate_repairs,
)
from repro.dynamo.execution import ManagedEnvironment, Outcome, RunResult
from repro.dynamo.guardrails import REVOCATION_BLACKLIST, PatchHealthLedger
from repro.dynamo.patches import Patch
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import Invariant, LessThan, LowerBound, OneOf


class SessionState(enum.Enum):
    """Lifecycle of one failure's handling."""

    CHECKING = "checking"          # invariant-check patches deployed
    EVALUATING = "evaluating"      # an unproven repair is applied
    PATCHED = "patched"            # current repair has succeeded >= once
    EXHAUSTED = "exhausted"        # no (more) correlated invariants/repairs


@dataclass
class ClearViewConfig:
    """Manager policy knobs (paper defaults)."""

    correlation: CorrelationConfig = field(default_factory=CorrelationConfig)
    #: Failures with checks in place before classification (§3.2: checks
    #: are removed on the second such notification).
    check_failures_required: int = 2
    #: Vet each candidate's compiled patches with the static dataflow
    #: analyzer before deployment (:mod:`repro.analysis.vetting`);
    #: statically-unsafe candidates are blacklisted without ever running
    #: on a member.  Disable to exercise the dynamic-only backstop.
    static_vetting: bool = True


@dataclass
class PhaseTimes:
    """Wall-clock per phase, the Table 3 row for one failure."""

    detect_run: float = 0.0
    build_checks: float = 0.0
    install_checks: float = 0.0
    check_runs: float = 0.0
    build_repairs: float = 0.0
    install_repairs: float = 0.0
    unsuccessful_repair_runs: float = 0.0
    successful_repair_run: float = 0.0

    def total(self) -> float:
        return (self.detect_run + self.build_checks + self.install_checks
                + self.check_runs + self.build_repairs
                + self.install_repairs + self.unsuccessful_repair_runs
                + self.successful_repair_run)


def _kind_counts(invariants: list[Invariant]) -> tuple[int, int, int]:
    """[one-of, lower-bound, less-than] counts, Table 3's bracket triple."""
    one_of = sum(1 for inv in invariants if isinstance(inv, OneOf))
    lower = sum(1 for inv in invariants if isinstance(inv, LowerBound))
    less = sum(1 for inv in invariants if isinstance(inv, LessThan))
    return (one_of, lower, less)


@dataclass
class FailureSession:
    """All ClearView state for one failure location."""

    failure_pc: int
    monitor: str
    state: SessionState = SessionState.CHECKING
    candidates: list[CandidateInvariant] = field(default_factory=list)
    histories: dict[Invariant, ObservationHistory] = \
        field(default_factory=dict)
    check_patches: list[Patch] = field(default_factory=list)
    check_failures: int = 0
    classification: dict[Invariant, Correlation] = field(default_factory=dict)
    selected_rank: Correlation | None = None
    evaluator: RepairEvaluator | None = None
    current_repair: ScoredRepair | None = None
    current_patches: list[Patch] = field(default_factory=list)
    times: PhaseTimes = field(default_factory=PhaseTimes)
    checked_kind_counts: tuple[int, int, int] = (0, 0, 0)
    repair_kind_counts: tuple[int, int, int] = (0, 0, 0)
    check_violations: int = 0
    check_executions: int = 0
    unsuccessful_runs: int = 0
    presentations: int = 0

    @property
    def failure_id(self) -> str:
        return f"{self.monitor}@{self.failure_pc:#x}"

    @property
    def patched(self) -> bool:
        return self.state is SessionState.PATCHED


class ClearView:
    """ClearView protecting one managed application instance.

    Parameters
    ----------
    environment:
        The managed application to protect (monitors configured there).
    database:
        The learned invariant model.
    procedures:
        Procedure CFGs discovered during learning (supplies predominators).
    config:
        Policy knobs; defaults reproduce the Red Team configuration.
    """

    def __init__(self, environment: ManagedEnvironment,
                 database: InvariantDatabase,
                 procedures: ProcedureDatabase,
                 config: ClearViewConfig | None = None):
        self.environment = environment
        self.database = database
        self.procedures = procedures
        self.config = config or ClearViewConfig()
        self.sessions: dict[int, FailureSession] = {}
        self.sink = ObservationSink()
        #: Log of (event, session failure_id) strings, for reports/tests.
        self.events: list[str] = []
        #: Post-deployment surveillance: §2.6 scoring continues after a
        #: repair is selected (see :mod:`repro.dynamo.guardrails`).
        self.guardrails = PatchHealthLedger()
        self._vetter = None
        #: Sessions demoted during the current run's outcome dispatch —
        #: guardrail enforcement must not charge the same terminal
        #: event twice when the rotation re-selected the same repair.
        self._demoted_this_run: set[int] = set()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(self, payload: bytes) -> RunResult:
        """Run the protected application once and react to the outcome."""
        evaluating_at_start = {
            pc: session.current_repair
            for pc, session in self.sessions.items()
            if session.state in (SessionState.EVALUATING,
                                 SessionState.PATCHED)}
        checking_at_start = {pc for pc, session in self.sessions.items()
                             if session.state is SessionState.CHECKING}
        fired_at_start = self._fired_counts()

        started = time.perf_counter()
        result = self.environment.run(payload)
        elapsed = time.perf_counter() - started

        self._fold_observations(result)
        self._attribute_check_time(result, checking_at_start, elapsed)
        # Post-deployment surveillance: attribute this run's terminal
        # event to the patches whose anchors executed near it, *before*
        # the outcome dispatch can rotate the watch set.
        self.guardrails.observe_run(result)
        self._demoted_this_run.clear()

        if result.outcome is Outcome.COMPLETED:
            self._on_completed(evaluating_at_start, elapsed)
        elif result.outcome is Outcome.FAILURE:
            assert result.failure_pc is not None
            self._on_failure(result, evaluating_at_start, elapsed)
        else:  # CRASH (or COMPROMISED, impossible under Memory Firewall)
            self._on_crash(evaluating_at_start, elapsed, fired_at_start)
        self.enforce_guardrails(elapsed)
        return result

    def _fired_counts(self) -> dict[int, int]:
        """Per-session sum of enforcement firings of the current repair's
        patches (used to attribute crashes causally)."""
        counts: dict[int, int] = {}
        for pc, session in self.sessions.items():
            counts[pc] = sum(getattr(patch, "fired", 0)
                             for patch in session.current_patches)
        return counts

    # ------------------------------------------------------------------
    # Outcome handling
    # ------------------------------------------------------------------

    def _on_completed(self, evaluating: dict[int, ScoredRepair | None],
                      elapsed: float) -> None:
        for pc, repair in evaluating.items():
            session = self.sessions[pc]
            if repair is None or session.current_repair is not repair:
                continue
            self._repair_succeeded(session, elapsed)

    def _on_failure(self, result: RunResult,
                    evaluating: dict[int, ScoredRepair | None],
                    elapsed: float) -> None:
        location = result.failure_pc
        assert location is not None
        consumed = False

        # Evaluation feedback for sessions whose repair was under test.
        for pc, repair in evaluating.items():
            session = self.sessions[pc]
            if repair is None or session.current_repair is not repair:
                continue
            if pc == location:
                self._repair_failed(session, elapsed)
            else:
                # The failure belongs to a different location: this
                # session's repair survived its own failure. An unproven
                # repair becoming proven consumes the notification.
                if session.state is SessionState.EVALUATING:
                    consumed = True
                self._repair_succeeded(session, elapsed)

        session = self.sessions.get(location)
        if session is None:
            if not consumed:
                self._open_session(result, elapsed)
            return

        session.presentations += 1
        if session.state is SessionState.CHECKING:
            session.check_failures += 1
            if session.check_failures >= \
                    self.config.check_failures_required:
                self._finish_checking(session, result)
        elif session.state in (SessionState.EVALUATING,
                               SessionState.PATCHED):
            # Handled above via evaluation feedback (repair rotation).
            pass
        # EXHAUSTED sessions: the monitor keeps blocking the attack;
        # nothing more ClearView can do with the current model.

    def _on_crash(self, evaluating: dict[int, ScoredRepair | None],
                  elapsed: float,
                  fired_at_start: dict[int, int] | None = None) -> None:
        # §2.6: the application crashed after repair. Blame is causal —
        # only repairs whose enforcement actually *fired* during the
        # crashed run are demoted. (Blaming every applied patch lets one
        # exploit's bad candidate repair poison other failures' proven
        # patches, an instability the paper's per-failure bookkeeping
        # rules out.) If no repair fired, the crash cannot have been
        # caused by an enforcement and every unproven repair is blamed
        # conservatively.
        fired_now = self._fired_counts()
        any_fired = fired_at_start is not None and any(
            fired_now.get(pc, 0) > fired_at_start.get(pc, 0)
            for pc in fired_now)
        for pc, repair in evaluating.items():
            session = self.sessions[pc]
            if repair is None or session.current_repair is not repair:
                continue
            if fired_at_start is None or not any_fired:
                # Nothing fired: conservatively blame repairs still
                # under evaluation, leave proven patches alone.
                implicated = session.state is SessionState.EVALUATING
            else:
                implicated = (fired_now.get(pc, 0) >
                              fired_at_start.get(pc, 0))
            if implicated:
                self._repair_failed(session, elapsed)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def _open_session(self, result: RunResult, elapsed: float) -> None:
        """First notification for this failure: select candidates, deploy
        invariant-check patches (§2.4.1-2)."""
        assert result.failure_pc is not None
        session = FailureSession(failure_pc=result.failure_pc,
                                 monitor=result.monitor or "unknown")
        session.presentations = 1
        session.times.detect_run += elapsed
        self.sessions[result.failure_pc] = session

        session.candidates = candidate_correlated_invariants(
            self.database, self.procedures, result.failure_pc,
            call_sites=result.call_sites,
            config=self.config.correlation)
        if not session.candidates:
            session.state = SessionState.EXHAUSTED
            self.events.append(f"no-candidates {session.failure_id}")
            return

        build_start = time.perf_counter()
        unique: dict[Invariant, CandidateInvariant] = {}
        for candidate in session.candidates:
            unique.setdefault(candidate.invariant, candidate)
        patches: list[Patch] = []
        decode = self.environment.binary.decode_at
        for invariant in unique:
            session.histories[invariant] = ObservationHistory()
            patches.extend(build_check_patches(
                invariant, session.failure_id, self.sink, decode))
        session.checked_kind_counts = _kind_counts(list(unique))
        session.times.build_checks += time.perf_counter() - build_start

        install_start = time.perf_counter()
        for patch in patches:
            self.environment.install_patch(patch)
        session.check_patches = patches
        session.times.install_checks += time.perf_counter() - install_start
        self.events.append(
            f"checks-deployed {session.failure_id} "
            f"({len(unique)} invariants, {len(patches)} patches)")

    def _finish_checking(self, session: FailureSession,
                         result: RunResult) -> None:
        """Second check failure: remove checks, classify, generate and
        apply the first repair (§2.4.3, §2.5)."""
        for patch in session.check_patches:
            self.environment.remove_patch(patch)
        session.check_patches = []

        session.classification = {
            invariant: classify(history)
            for invariant, history in session.histories.items()}
        selected, rank = select_for_repair(session.classification)
        session.selected_rank = rank
        if not selected:
            session.state = SessionState.EXHAUSTED
            self.events.append(f"no-correlated {session.failure_id}")
            return

        build_start = time.perf_counter()
        by_invariant = {candidate.invariant: candidate
                        for candidate in session.candidates}
        candidates: list[CandidateRepair] = []
        for invariant in selected:
            source = by_invariant[invariant]
            candidates.extend(generate_candidate_repairs(
                self.environment.binary, invariant,
                stack_distance=source.stack_distance,
                correlation_rank=int(rank) if rank is not None else 0,
                database=self.database))
        session.repair_kind_counts = _kind_counts(selected)
        session.times.build_repairs += time.perf_counter() - build_start

        if not candidates:
            session.state = SessionState.EXHAUSTED
            self.events.append(f"no-repairs {session.failure_id}")
            return
        session.evaluator = RepairEvaluator(candidates)
        self._apply_best_repair(session)
        session.state = SessionState.EVALUATING

    @property
    def vetter(self):
        """Lazily-built static patch vetter (shared dataflow caches)."""
        if self._vetter is None:
            from repro.analysis.vetting import Vetter
            self._vetter = Vetter(self.environment.binary,
                                  self.procedures)
        return self._vetter

    def vet_candidate(self, candidate: CandidateRepair,
                      failure_id: str = ""):
        """Compile *candidate* and run the static vetter over it."""
        patches = build_repair_patch(
            self.environment.binary, candidate, failure_id,
            database=self.database)
        return self.vetter.vet(patches,
                               description=candidate.description)

    def _veto(self, session: FailureSession, scored: ScoredRepair,
              report) -> None:
        """Blacklist a statically-unsafe candidate before deployment."""
        assert session.evaluator is not None
        key = scored.candidate.description
        rules = tuple(dict.fromkeys(
            finding.rule for finding in report.findings))
        session.evaluator.record_failure(scored)
        session.evaluator.blacklist(scored)
        self.guardrails.record_vetoed(key, session.failure_id,
                                      rules=rules)
        self.events.append(
            f"repair-vetoed {session.failure_id}: {key} "
            f"[{', '.join(rules)}]")

    def _apply_best_repair(self, session: FailureSession) -> None:
        assert session.evaluator is not None
        while True:
            best = session.evaluator.best()
            if best is not None and self.config.static_vetting:
                vet_start = time.perf_counter()
                report = self.vet_candidate(best.candidate,
                                            session.failure_id)
                session.times.build_repairs += \
                    time.perf_counter() - vet_start
                if not report.accepted:
                    self._veto(session, best, report)
                    continue  # rotate to the next-best candidate
            break
        if best is None:
            # Every candidate is blacklisted (revoked twice, toxic, or
            # vetoed): the session is out of viable repairs for this
            # model.
            self._remove_current_patches(session)
            session.state = SessionState.EXHAUSTED
            self.events.append(f"repairs-exhausted {session.failure_id}")
            return
        if session.current_repair is best and session.current_patches:
            return  # already applied
        install_start = time.perf_counter()
        self._remove_current_patches(session)
        patches = build_repair_patch(
            self.environment.binary, best.candidate, session.failure_id,
            database=self.database)
        for patch in patches:
            self.environment.install_patch(patch)
        session.current_repair = best
        session.current_patches = patches
        self.guardrails.watch(best.candidate.description,
                              session.failure_id, patches,
                              failure_pc=session.failure_pc)
        session.times.install_repairs += time.perf_counter() - install_start
        self.events.append(
            f"repair-applied {session.failure_id}: "
            f"{best.candidate.description}")

    def _remove_current_patches(self, session: FailureSession) -> None:
        if session.current_repair is not None:
            self.guardrails.unwatch(
                session.current_repair.candidate.description)
        # A community environment withdraws patches with its idempotent
        # fleet-wide revoke (one wave, no member dropped over a patch it
        # no longer holds); a single managed instance removes directly.
        revoke = getattr(self.environment, "revoke_patch", None)
        for patch in session.current_patches:
            if revoke is not None:
                revoke(patch)
            else:
                self.environment.remove_patch(patch)
        session.current_patches = []
        session.current_repair = None

    def _repair_succeeded(self, session: FailureSession,
                          elapsed: float) -> None:
        assert session.evaluator is not None
        assert session.current_repair is not None
        first_success = session.current_repair.successes == 0
        session.evaluator.record_success(session.current_repair)
        if first_success:
            session.times.successful_repair_run += elapsed
        session.state = SessionState.PATCHED
        self.events.append(f"repair-succeeded {session.failure_id}")

    def _repair_failed(self, session: FailureSession,
                       elapsed: float) -> None:
        assert session.evaluator is not None
        assert session.current_repair is not None
        scored = session.current_repair
        key = scored.candidate.description
        was_deployed = session.state is SessionState.PATCHED
        session.evaluator.record_failure(scored)
        session.times.unsuccessful_repair_runs += elapsed
        session.unsuccessful_runs += 1
        self._demoted_this_run.add(session.failure_pc)
        self.events.append(f"repair-failed {session.failure_id}: {key}")
        if was_deployed:
            # A *deployed* repair turning bad is a fleet-wide
            # revocation: the rotation below withdraws it from every
            # member.  Flap damping: revoked twice → blacklisted, so
            # the community never oscillates between two half-working
            # repairs.
            scored.revocations += 1
            self.guardrails.record_revocation(key)
            self.events.append(f"repair-revoked {session.failure_id}: "
                               f"{key}")
            if scored.revocations >= REVOCATION_BLACKLIST:
                session.evaluator.blacklist(scored)
                self.guardrails.record_blacklist(key)
                self.events.append(
                    f"repair-blacklisted {session.failure_id}: {key}")
        session.state = SessionState.EVALUATING
        self._apply_best_repair(session)

    def enforce_guardrails(self, elapsed: float = 0.0) -> list[str]:
        """Demote repairs whose health record turned bad (§2.6 cont'd).

        Drains the surveillance ledger's newly-bad records; a record
        still matching its session's current repair demotes it exactly
        as a directly observed failure would — revocation counting,
        flap damping, and rotation to the next candidate included.
        Records whose repair was already rotated away (the core causal
        path got there first) are left alone.  Returns the keys of the
        repairs demoted here.
        """
        revoked: list[str] = []
        for record in self.guardrails.newly_bad():
            session = None
            if record.failure_pc is not None:
                session = self.sessions.get(record.failure_pc)
            if session is None:
                session = next(
                    (candidate for candidate in self.sessions.values()
                     if candidate.failure_id == record.failure_id), None)
            if session is None or session.current_repair is None:
                continue
            if session.failure_pc in self._demoted_this_run:
                continue  # the causal path already charged this event
            if session.current_repair.candidate.description != record.key:
                continue
            if session.state not in (SessionState.EVALUATING,
                                     SessionState.PATCHED):
                continue
            self._repair_failed(session, elapsed)
            revoked.append(record.key)
        return revoked

    # ------------------------------------------------------------------
    # Observation folding
    # ------------------------------------------------------------------

    def _fold_observations(self, result: RunResult) -> None:
        observations = self.sink.drain()
        if not observations:
            return
        grouped: dict[tuple[str, Invariant], list[bool]] = {}
        for observation in observations:
            key = (observation.failure_id, observation.invariant)
            grouped.setdefault(key, []).append(observation.satisfied)
        for session in self.sessions.values():
            if session.state is not SessionState.CHECKING:
                continue
            ended_in_failure = (result.outcome is Outcome.FAILURE and
                                result.failure_pc == session.failure_pc)
            for invariant, history in session.histories.items():
                sequence = grouped.get((session.failure_id, invariant))
                if sequence:
                    session.check_violations += sum(
                        1 for ok in sequence if not ok)
                    session.check_executions += len(sequence)
                    history.add_run(sequence, ended_in_failure)

    def _attribute_check_time(self, result: RunResult,
                              checking: set[int], elapsed: float) -> None:
        if result.outcome is not Outcome.FAILURE:
            return
        if result.failure_pc in checking:
            self.sessions[result.failure_pc].times.check_runs += elapsed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def session_at(self, pc: int) -> FailureSession | None:
        return self.sessions.get(pc)

    def patched_sessions(self) -> list[FailureSession]:
        return [session for session in self.sessions.values()
                if session.patched]

    def applied_patch_count(self) -> int:
        return len(self.environment.patches)
