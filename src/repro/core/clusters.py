"""Cluster-based candidate invariant selection (§2.4.1).

The paper's default candidate strategy walks the shadow call stack.  It
also sketches an alternative for deployments without a shadow stack:
"learn clusters of basic blocks that tend to execute together, then work
with sets of invariants from clusters containing the basic block where
the failure occurred."  This module implements that strategy: block
co-execution statistics are gathered during learning, clustered by
co-occurrence, and used at failure time to assemble a candidate set with
no stack information at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import ProcedureDatabase
from repro.core.correlation import CandidateInvariant
from repro.dynamo.blocks import BasicBlock
from repro.dynamo.code_cache import CachePlugin, CodeCache
from repro.learning.database import InvariantDatabase
from repro.learning.invariants import SPOffset


class BlockCoverageRecorder(CachePlugin):
    """Records, per run, which basic blocks entered the code cache.

    Attach to the learning environment's cache plugins and call
    :meth:`end_run` after each input; block builds are a faithful proxy
    for "executed at least once during this run" because every
    per-instance cache starts cold.
    """

    def __init__(self):
        self._current: set[int] = set()
        self.runs: list[frozenset[int]] = []

    def on_block_build(self, cache: CodeCache, block: BasicBlock) -> None:
        self._current.add(block.start)

    def end_run(self) -> None:
        self.runs.append(frozenset(self._current))
        self._current = set()


@dataclass
class BlockClusters:
    """Co-execution clusters over basic blocks.

    Two blocks belong to the same cluster when their run-occurrence
    sets are identical-enough (Jaccard similarity above the threshold
    against the cluster's seed block).  Single-linkage against seeds
    keeps the construction simple and deterministic.
    """

    threshold: float = 0.99
    clusters: list[set[int]] = field(default_factory=list)
    _block_to_cluster: dict[int, int] = field(default_factory=dict)

    @classmethod
    def learn(cls, runs: list[frozenset[int]],
              threshold: float = 0.99) -> "BlockClusters":
        """Cluster blocks by which runs they appeared in."""
        occurrence: dict[int, set[int]] = {}
        for run_index, blocks in enumerate(runs):
            for block in blocks:
                occurrence.setdefault(block, set()).add(run_index)

        result = cls(threshold=threshold)
        seeds: list[tuple[int, set[int]]] = []
        for block in sorted(occurrence):
            block_runs = occurrence[block]
            placed = False
            for cluster_index, (_, seed_runs) in enumerate(seeds):
                union = len(block_runs | seed_runs)
                if union == 0:
                    continue
                jaccard = len(block_runs & seed_runs) / union
                if jaccard >= threshold:
                    result.clusters[cluster_index].add(block)
                    result._block_to_cluster[block] = cluster_index
                    placed = True
                    break
            if not placed:
                seeds.append((block, block_runs))
                result.clusters.append({block})
                result._block_to_cluster[block] = len(seeds) - 1
        return result

    def cluster_of(self, block_start: int) -> set[int]:
        """Blocks in the same cluster as *block_start* (empty if unknown)."""
        index = self._block_to_cluster.get(block_start)
        if index is None:
            return set()
        return set(self.clusters[index])

    def __len__(self) -> int:
        return len(self.clusters)


def cluster_candidates(database: InvariantDatabase,
                       procedures: ProcedureDatabase,
                       clusters: BlockClusters,
                       failure_pc: int) -> list[CandidateInvariant]:
    """Candidate correlated invariants from the failure block's cluster.

    No call-stack information is used: the candidate set is every
    checkable invariant whose check instruction lies in a block that
    co-executes with the failing block.
    """
    procedure = procedures.procedure_of(failure_pc)
    if procedure is None:
        return []
    block = procedure.block_of(failure_pc)
    if block is None:
        return []
    cluster = clusters.cluster_of(block.start)
    if not cluster:
        return []

    candidates: list[CandidateInvariant] = []
    for member_start in sorted(cluster):
        member_procedure = procedures.procedure_of(member_start)
        if member_procedure is None:
            continue
        member_block = member_procedure.block_of(member_start)
        if member_block is None:
            continue
        for pc in member_block.addresses():
            for invariant in database.invariants_at(pc):
                if isinstance(invariant, SPOffset):
                    continue
                candidates.append(CandidateInvariant(
                    invariant=invariant,
                    stack_distance=0,
                    procedure_entry=member_procedure.entry))
    return candidates
