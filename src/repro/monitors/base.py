"""Monitor base class and shared definitions.

A ClearView monitor (§2.3) classifies executions as normal or erroneous and,
for erroneous executions, supplies a *failure location* — the program
counter where the failure was detected.  Monitors must have no false
positives; they terminate the application on detection by raising
:class:`~repro.errors.MonitorDetection`.

Monitors are subscription-routed hooks: each subclass overrides only the
events it needs (Memory Firewall ``on_transfer``, Heap Guard
``on_store``), so the CPU consults a monitor exactly when its event
occurs — the Table 2 overhead of a configuration is the sum of its
subscriptions, not a per-instruction tax.
"""

from __future__ import annotations

from repro.errors import MonitorDetection
from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook


class Monitor(ExecutionHook):
    """Base class for failure detectors."""

    #: Human-readable monitor name, used in failure identification.
    name = "monitor"

    def __init__(self):
        self.detections = 0

    def detect(self, cpu: CPU, pc: int, message: str) -> None:
        """Record a detection and terminate the application."""
        self.detections += 1
        raise MonitorDetection(message, pc=pc, monitor=self.name)
