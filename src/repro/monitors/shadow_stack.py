"""Shadow Stack: an auxiliary procedure call stack.

Per §2.3: ClearView instruments call and return instructions to maintain a
shadow of the procedure call stack.  The shadow survives native-stack
corruption (buffer overflows) and frame-pointer optimisations, so the
correlated-invariant search can walk *callers* of the failing procedure.

Each frame records the call-site pc, the callee entry address, and the
stack pointer at entry — the last of which supports the stack-pointer
offset adjustment that return-from-procedure repairs need (§2.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.cpu import CPU
from repro.vm.hooks import ExecutionHook, TransferKind
from repro.vm.isa import Register


@dataclass(frozen=True)
class ShadowFrame:
    """One procedure activation."""

    call_site: int        # pc of the call instruction
    entry: int            # callee entry address (= discovered procedure id)
    return_address: int   # where the callee will return to
    sp_at_entry: int      # ESP immediately after the call pushed the RA


class ShadowStack(ExecutionHook):
    """Maintains the shadow call stack; not a failure detector itself.

    Subscribes to ``on_transfer`` (call frames, patch unwinds) and
    ``on_return`` only — straight-line execution never consults it.
    """

    def __init__(self):
        self.frames: list[ShadowFrame] = []
        self.pushes = 0
        self.pops = 0
        self.mismatches = 0

    def on_transfer(self, cpu: CPU, pc: int, kind: str,
                    target: int) -> None:
        if kind in (TransferKind.CALL, TransferKind.INDIRECT_CALL):
            from repro.vm.isa import INSTRUCTION_SIZE
            self.frames.append(ShadowFrame(
                call_site=pc,
                entry=target,
                return_address=pc + INSTRUCTION_SIZE,
                # The CALL has already pushed the return address by the
                # time on_transfer fires, so ESP is the at-entry value.
                sp_at_entry=cpu.registers[Register.ESP]))
            self.pushes += 1
        elif kind == TransferKind.PATCH and self.frames and \
                target == self.frames[-1].return_address:
            # A return-from-procedure repair unwound the current frame.
            self.frames.pop()
            self.pops += 1

    def on_return(self, cpu: CPU, pc: int, target: int) -> None:
        self.pops += 1
        if not self.frames:
            self.mismatches += 1
            return
        frame = self.frames.pop()
        if frame.return_address != target:
            # Tail-call patterns or a corrupted native stack; the shadow
            # stays internally consistent either way.
            self.mismatches += 1

    def snapshot(self) -> tuple[int, ...]:
        """Entry addresses of the procedures currently on the stack,
        innermost last. This is what failure notifications carry."""
        return tuple(frame.entry for frame in self.frames)

    def call_sites(self) -> tuple[int, ...]:
        """Call-site pcs, innermost last."""
        return tuple(frame.call_site for frame in self.frames)

    def current_frame(self) -> ShadowFrame | None:
        return self.frames[-1] if self.frames else None

    def clear(self) -> None:
        self.frames.clear()
