"""Heap Guard: canary-based out-of-bounds write detection.

Per §2.3: canary values are placed at the boundaries of allocated memory
blocks (done by the allocator when canaries are enabled) and all heap
writes are instrumented.  If a written location *contained* the canary
value, that indicates either an out-of-bounds write or a legitimate
previous in-bounds write of the canary pattern — the allocation map is
searched to distinguish the two.  By design Heap Guard has no false
positives; it can miss an out-of-bounds write that skips over the canary.
"""

from __future__ import annotations

from repro.monitors.base import Monitor
from repro.vm.cpu import CPU
from repro.vm.heap import CANARY


class HeapGuard(Monitor):
    """Detects out-of-bounds heap writes via boundary canaries.

    Requires the CPU's heap allocator to have been created with
    ``guard_canaries=True`` (the managed environment arranges this).
    Subscribes to ``on_store`` only; its cost (and the old-value read
    the CPU performs to feed it) is paid exclusively at program writes.
    """

    name = "heap-guard"

    def __init__(self):
        super().__init__()
        self.checks = 0
        self.map_searches = 0
        #: Dynamically toggleable (§2.3: Heap Guard can be enabled and
        #: disabled as the application executes without perturbing it).
        self.enabled = True

    def on_store(self, cpu: CPU, pc: int, address: int, size: int,
                 value: int, old_value: int) -> None:
        if not self.enabled or not cpu.memory.in_heap(address):
            return
        self.checks += 1
        if old_value != CANARY:
            return
        # The written location held the canary: either we just smashed a
        # boundary canary, or the application legitimately overwrote its
        # own earlier in-bounds write of the canary pattern.
        self.map_searches += 1
        block = cpu.heap.find_block(address)
        if block is None:
            self.detect(cpu, pc,
                        f"out-of-bounds heap write at {address:#x}")
