"""Memory Firewall: program shepherding for MiniX86.

The paper's Memory Firewall (a commercial implementation of program
shepherding [21]) validates every control flow transfer whose target was
not statically verified, and terminates the application before injected
code can execute.  Our version validates *indirect* transfers (indirect
call, indirect jump, return) against two rules:

1. the target must lie inside the code segment, word-aligned to an
   instruction boundary; and
2. the target must not be attacker-supplied data masquerading as a code
   address — approximated, as in program shepherding, by requiring targets
   of indirect transfers to be addresses the execution environment can
   validate as instruction starts.

Direct transfers are assembled-in constants and need no dynamic check,
exactly as in the paper where code-cache-resident direct branches are
pre-validated.
"""

from __future__ import annotations

from repro.monitors.base import Monitor
from repro.vm.cpu import CPU
from repro.vm.hooks import TransferKind
from repro.vm.isa import INSTRUCTION_SIZE

#: Transfer kinds Memory Firewall validates dynamically.
_VALIDATED_KINDS = frozenset({
    TransferKind.INDIRECT_CALL,
    TransferKind.INDIRECT_JUMP,
    TransferKind.RETURN,
    TransferKind.PATCH,
})


class MemoryFirewall(Monitor):
    """Detects illegal control flow transfers.

    Subscribes to ``on_transfer`` only — exactly the event set program
    shepherding instruments, so enabling the firewall leaves
    straight-line execution untouched.

    Zero false positives by construction: any target that is a legitimate
    instruction address in the code segment passes.  (The paper's stronger
    policy — restricting targets to previously observed entry points — is
    what ClearView's *one-of invariants* provide on top; the firewall's
    job is only to stop transfers that leave legitimate code entirely.)
    """

    name = "memory-firewall"

    def __init__(self):
        super().__init__()
        self.validations = 0

    def on_transfer(self, cpu: CPU, pc: int, kind: str,
                    target: int) -> None:
        if kind not in _VALIDATED_KINDS:
            return
        self.validations += 1
        if not cpu.memory.in_code(target) or \
                target % INSTRUCTION_SIZE != 0:
            self.detect(
                cpu, pc,
                f"illegal control transfer ({kind}) to {target:#x}")
