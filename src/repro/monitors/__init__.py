"""ClearView monitors: failure detectors and the shadow stack."""

from repro.monitors.base import Monitor
from repro.monitors.heap_guard import HeapGuard
from repro.monitors.memory_firewall import MemoryFirewall
from repro.monitors.shadow_stack import ShadowFrame, ShadowStack

__all__ = ["Monitor", "HeapGuard", "MemoryFirewall", "ShadowFrame",
           "ShadowStack"]
