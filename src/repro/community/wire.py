"""Wire codecs for the process-sharded application community.

Everything that crosses a process boundary — commands, replies, uploaded
invariant databases, distributed patches, run results — travels as
canonical JSON produced by :func:`encode`.  The encoding is the same one
:class:`~repro.community.transport.Message` accounts with, so
``Message.wire_size()`` equals the number of bytes actually written to a
worker pipe for the same payload.

Patches are the delicate case.  A ClearView patch is live server-side
state: check patches record into the manager's
:class:`~repro.core.checks.ObservationSink`, two-variable patches share a
:class:`~repro.core.checks.ValueCapture` cell, and repair patches carry a
``fired`` counter the manager reads for causal crash blame.  The codec
therefore ships *structure*, not state:

- shared capture cells are encoded by ``capture_id`` and re-linked from a
  per-worker registry, so a capture/check pair decoded by two separate
  ``install-patch`` commands still shares one cell.  (Scope note: the
  registry is per worker, i.e. per member machine — physically faithful.
  The in-process simulation instead installs the *same* patch objects on
  every simulated member, so there a capture cell is accidentally shared
  community-wide; the two can diverge only on a run that reaches a check
  pc without having executed its capture pc, where in-process code would
  read another member's stale capture);
- a decoded check patch records into whatever sink the decode context
  supplies (workers install a tap that streams ``(patch_id, satisfied)``
  events back to the server);
- ``fired`` is never shipped — workers report deltas and the server folds
  them into the canonical patch objects.
"""

from __future__ import annotations

import json
import typing

from repro.core.checks import CapturePatch, CheckPatch, ValueCapture
from repro.core.repair import (
    RepairAction,
    ReturnFromProcedureRepair,
    SetFromVariableRepair,
    SetValueRepair,
    SkipCallRepair,
)
from repro.dynamo.execution import Outcome, RunResult
from repro.dynamo.patches import JumpPatch, Patch, PokePatch
from repro.learning.invariants import invariant_from_dict
from repro.learning.variables import Variable

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.checks import ObservationSink


class WireError(ValueError):
    """A payload could not be encoded or decoded."""


def encode(payload: dict) -> bytes:
    """Canonical JSON bytes (the byte count ``Message.wire_size`` reports)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode(raw: bytes) -> dict:
    """Inverse of :func:`encode`; raises :class:`WireError` on garbage."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable wire payload: {error}") from error
    if not isinstance(payload, dict):
        raise WireError(f"wire payload is {type(payload).__name__}, "
                        f"expected an object")
    return payload


# ---------------------------------------------------------------------------
# Membership (hello / rejoin catch-up)
# ---------------------------------------------------------------------------

def hello_to_dict(name: str, epoch: int = 0) -> dict:
    """The epoch-stamped hello a member introduces itself with.

    ``epoch`` is the member's last *acknowledged* patch-ledger epoch:
    0 for a fresh process (nothing installed), the epoch stamped on the
    last install/remove command it processed for a member reconnecting
    with state intact.  The server replays exactly the ledger deltas
    after this epoch before re-admitting the member.
    """
    return {"op": "hello", "name": name, "epoch": int(epoch)}


def hello_from_dict(payload: dict) -> tuple[str, int]:
    """Validate a hello frame; returns ``(name, acked epoch)``."""
    if not isinstance(payload, dict) or payload.get("op") != "hello":
        raise WireError(f"not a hello frame: {payload!r}")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise WireError(f"hello without a member name: {payload!r}")
    epoch = payload.get("epoch", 0)
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise WireError(f"bad hello epoch {epoch!r}")
    return name, epoch


def catch_up_to_dict(removes: list[int], installs: list[dict],
                     epoch: int) -> dict:
    """The ledger-delta payload a rejoining member replays.

    ``removes`` are patch ids the member still holds that the community
    has since withdrawn; ``installs`` are wire-form patches
    (:func:`patch_to_dict`) it missed; ``epoch`` is the ledger epoch the
    member acknowledges by applying them.  Removes are ordered before
    installs — a remove can only refer to a pre-rejoin install, while an
    install may reuse a just-freed patch id.
    """
    return {"removes": [int(patch_id) for patch_id in removes],
            "installs": list(installs), "epoch": int(epoch)}


def catch_up_from_dict(payload: dict) -> tuple[list[int], list[dict], int]:
    """Validate a catch-up command; returns (removes, installs, epoch)."""
    try:
        removes = payload["removes"]
        installs = payload["installs"]
        epoch = payload["epoch"]
    except (KeyError, TypeError) as error:
        raise WireError(f"malformed catch-up payload: {error}") from error
    if not isinstance(removes, list) or not isinstance(installs, list):
        raise WireError("catch-up removes/installs must be lists")
    if not all(isinstance(patch_id, int) and not isinstance(patch_id, bool)
               for patch_id in removes):
        raise WireError("catch-up removes must be integer patch ids")
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise WireError(f"bad catch-up epoch {epoch!r}")
    if not all(isinstance(entry, dict) for entry in installs):
        raise WireError("catch-up installs must be patch payloads")
    return removes, installs, epoch


# ---------------------------------------------------------------------------
# Run results
# ---------------------------------------------------------------------------

def run_result_to_dict(result: RunResult) -> dict:
    return {
        "outcome": result.outcome.value,
        "output": list(result.output),
        "steps": result.steps,
        "detail": result.detail,
        "failure_pc": result.failure_pc,
        "monitor": result.monitor,
        "call_stack": list(result.call_stack),
        "call_sites": list(result.call_sites),
        "interrupted_pc": result.interrupted_pc,
        "stats": dict(result.stats),
        # JSON objects key by string; decode restores the int patch ids.
        "patch_proximity": {str(patch_id): distance for patch_id, distance
                            in result.patch_proximity.items()},
    }


def run_result_from_dict(payload: dict) -> RunResult:
    try:
        return RunResult(
            outcome=Outcome(payload["outcome"]),
            output=list(payload["output"]),
            steps=payload["steps"],
            detail=payload.get("detail", ""),
            failure_pc=payload.get("failure_pc"),
            monitor=payload.get("monitor"),
            call_stack=tuple(payload.get("call_stack", ())),
            call_sites=tuple(payload.get("call_sites", ())),
            interrupted_pc=payload.get("interrupted_pc"),
            stats=dict(payload.get("stats", {})),
            patch_proximity={
                int(patch_id): int(distance) for patch_id, distance
                in payload.get("patch_proximity", {}).items()},
        )
    except (KeyError, ValueError, TypeError) as error:
        raise WireError(f"malformed run result: {error}") from error


# ---------------------------------------------------------------------------
# Patches
# ---------------------------------------------------------------------------

_PATCH_TYPES = {
    "check": CheckPatch,
    "capture": CapturePatch,
    "set-value": SetValueRepair,
    "set-from-variable": SetFromVariableRepair,
    "skip-call": SkipCallRepair,
    "return-from-procedure": ReturnFromProcedureRepair,
    # Generic primitives (no invariant): distributable so the chaos
    # harness's adversarial repairs reach real worker processes.
    "jump": JumpPatch,
    "poke": PokePatch,
}
_TYPE_BY_CLASS = {cls: name for name, cls in _PATCH_TYPES.items()}


def patch_to_dict(patch: Patch) -> dict:
    """Serialize one of ClearView's distributable patches.

    Raises :class:`WireError` for patch classes outside the community
    protocol (ad-hoc test patches, manual source fixes): those never leave
    the server, so they have no wire form.
    """
    kind = _TYPE_BY_CLASS.get(type(patch))
    if kind is None:
        raise WireError(
            f"{type(patch).__name__} is not a distributable patch")
    payload: dict = {
        "type": kind,
        "pc": patch.pc,
        "failure_id": patch.failure_id,
        "patch_id": patch.patch_id,
        "description": patch.description,
        "when": patch.when,
    }
    if isinstance(patch, CapturePatch):
        payload["variable"] = str(patch.variable)
        payload["capture_id"] = patch.capture.capture_id
        return payload
    if isinstance(patch, JumpPatch):
        payload["target"] = patch.target
        return payload
    if isinstance(patch, PokePatch):
        payload["address"] = patch.address
        payload["value"] = patch.value
        return payload
    payload["invariant"] = patch.invariant.to_dict()
    payload["capture_id"] = (patch.capture.capture_id
                             if patch.capture is not None else None)
    if isinstance(patch, CheckPatch):
        return payload
    payload["action"] = int(patch.action)
    if isinstance(patch, SetValueRepair):
        payload["target_register"] = patch.target_register
        payload["value"] = patch.value
    elif isinstance(patch, SetFromVariableRepair):
        payload["target_register"] = patch.target_register
        payload["adjust_left"] = patch.adjust_left
    elif isinstance(patch, ReturnFromProcedureRepair):
        payload["sp_offset"] = patch.sp_offset
    return payload


def patch_from_dict(payload: dict, captures: dict[str, ValueCapture],
                    sink: "ObservationSink | None" = None) -> Patch:
    """Rebuild a patch in a worker process.

    ``captures`` is the worker's shared capture registry: every patch
    naming the same ``capture_id`` is linked to one local cell.  ``sink``
    receives check-patch observations (required to decode check patches).
    """
    try:
        kind = payload["type"]
        cls = _PATCH_TYPES.get(kind)
        if cls is None:
            raise WireError(f"unknown patch type {kind!r}")
        base = dict(pc=payload["pc"], failure_id=payload["failure_id"],
                    patch_id=payload["patch_id"],
                    description=payload["description"], when=payload["when"])

        def capture_cell(capture_id: str | None) -> ValueCapture | None:
            if capture_id is None:
                return None
            cell = captures.get(capture_id)
            if cell is None:
                cell = ValueCapture(capture_id=capture_id)
                captures[capture_id] = cell
            return cell

        if kind == "capture":
            return CapturePatch(
                variable=Variable.parse(payload["variable"]),
                capture=capture_cell(payload["capture_id"]), **base)
        if kind == "jump":
            return JumpPatch(target=payload["target"], **base)
        if kind == "poke":
            return PokePatch(address=payload["address"],
                             value=payload["value"], **base)
        invariant = invariant_from_dict(payload["invariant"])
        capture = capture_cell(payload.get("capture_id"))
        if kind == "check":
            if sink is None:
                raise WireError("check patches need an observation sink")
            return CheckPatch(invariant=invariant, sink=sink,
                              capture=capture, **base)
        action = RepairAction(payload["action"])
        if kind == "set-value":
            return SetValueRepair(
                invariant=invariant, action=action, capture=capture,
                target_register=payload["target_register"],
                value=payload["value"], **base)
        if kind == "set-from-variable":
            return SetFromVariableRepair(
                invariant=invariant, action=action, capture=capture,
                target_register=payload["target_register"],
                adjust_left=payload["adjust_left"], **base)
        if kind == "skip-call":
            return SkipCallRepair(invariant=invariant, action=action,
                                  capture=capture, **base)
        return ReturnFromProcedureRepair(
            invariant=invariant, action=action, capture=capture,
            sp_offset=payload["sp_offset"], **base)
    except WireError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise WireError(f"malformed patch payload: {error}") from error
