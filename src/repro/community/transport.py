"""Simulated secure transport between community members and the server.

Models the Determina Node Manager <-> Management Console channel (SSL in
the paper).  Messages are JSON-able dicts; the bus records every message
with its approximate wire size, which lets benchmarks verify the §3.1
claim that members upload *invariants*, never raw trace data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class Message:
    """One transported message."""

    sender: str
    recipient: str
    kind: str
    payload: dict

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        return len(json.dumps(self.payload, separators=(",", ":")))


@dataclass
class MessageBus:
    """In-process message bus with delivery accounting."""

    log: list[Message] = field(default_factory=list)
    _subscribers: dict[str, list] = field(default_factory=dict)

    def subscribe(self, name: str, handler) -> None:
        """Register *handler* (callable(Message)) for messages to *name*."""
        self._subscribers.setdefault(name, []).append(handler)

    def send(self, sender: str, recipient: str, kind: str,
             payload: dict) -> Message:
        """Deliver a message synchronously; returns the logged record."""
        message = Message(sender=sender, recipient=recipient, kind=kind,
                          payload=payload)
        self.log.append(message)
        for handler in self._subscribers.get(recipient, ()):
            handler(message)
        return message

    # -- accounting ---------------------------------------------------------

    def bytes_by_kind(self) -> dict[str, int]:
        """Total wire bytes per message kind."""
        totals: dict[str, int] = {}
        for message in self.log:
            totals[message.kind] = (totals.get(message.kind, 0)
                                    + message.wire_size())
        return totals

    def count_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for message in self.log:
            counts[message.kind] = counts.get(message.kind, 0) + 1
        return counts
