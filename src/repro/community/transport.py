"""Simulated secure transport between community members and the server.

Models the Determina Node Manager <-> Management Console channel (SSL in
the paper).  Messages are JSON-able dicts; the bus records every message
with its wire size, which lets benchmarks verify the §3.1 claim that
members upload *invariants*, never raw trace data.

Three transports share this accounting API:

- :class:`MessageBus` — the in-process bus; members are simulated in the
  server's process and handlers run synchronously.
- :class:`~repro.community.sharding.ProcessTransport` — each member runs
  in its own OS process; commands and replies cross anonymous
  socketpairs as deadline-framed canonical JSON.
- :class:`~repro.community.remote.SocketTransport` — members over TCP
  (optionally TLS, the paper's SSL channel), same framing, same logs.

Channel transports log every message twice over: its canonical payload
encoding (``wire_size``, identical across transports for identical
payloads) and its true on-wire frame attribution (``frame_size``, whose
per-kind totals sum to the bytes that actually crossed the channels).

Delivery is by value on both: ``send`` round-trips the payload through
the wire codec, so an in-process subscriber can never observe a
sender-side mutation that a process-sharded member would not see.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class Message:
    """One transported message."""

    sender: str
    recipient: str
    kind: str
    payload: dict
    #: Cached encoded size; the bus fills this at send time (it already
    #: serializes for the by-value copy) so accounting sweeps over large
    #: logs do not re-serialize every payload.
    encoded_size: int | None = field(default=None, compare=False,
                                     repr=False)
    #: Bytes this record accounts for on a *real* channel (length
    #: prefix included; a reply frame's bytes are split exactly between
    #: the piggybacked member messages and the ``reply:<op>`` record).
    #: None on the in-process bus, where nothing crosses a wire.
    frame_size: int | None = field(default=None, compare=False,
                                   repr=False)

    def wire_size(self) -> int:
        """Canonical encoded size of the payload in bytes — the
        transport-independent measure both substrates report (identical
        for identical payloads, wire framing overhead excluded)."""
        if self.encoded_size is None:
            self.encoded_size = len(
                json.dumps(self.payload, separators=(",", ":"))
                .encode("utf-8"))
        return self.encoded_size


@dataclass
class MessageBus:
    """In-process message bus with delivery accounting."""

    log: list[Message] = field(default_factory=list)
    _subscribers: dict[str, list] = field(default_factory=dict)

    def subscribe(self, name: str, handler) -> None:
        """Register *handler* (callable(Message)) for messages to *name*."""
        self._subscribers.setdefault(name, []).append(handler)

    def send(self, sender: str, recipient: str, kind: str,
             payload: dict) -> Message:
        """Deliver a message synchronously; returns the logged record.

        The payload is round-tripped through the wire encoding at send
        time: recipients (and the log) hold an independent copy, so later
        sender-side mutations are invisible — the same by-value semantics
        a real serialized channel has.
        """
        encoded = json.dumps(payload, separators=(",", ":"))
        return self.deliver(Message(
            sender=sender, recipient=recipient, kind=kind,
            payload=json.loads(encoded),
            encoded_size=len(encoded.encode("utf-8"))))

    def deliver(self, message: Message) -> Message:
        """Log and dispatch an already-materialized message.

        For callers whose payload is *already* an independent copy (the
        process transport logs payloads freshly decoded off a pipe):
        skips the defensive re-serialization ``send`` performs.
        """
        self.log.append(message)
        for handler in self._subscribers.get(message.recipient, ()):
            handler(message)
        return message

    def close(self) -> None:
        """Nothing to tear down for the in-process bus."""

    # -- member-lifecycle parity -------------------------------------------

    #: In-process members cannot wedge between commands; there is no
    #: prober to configure.  (Plain class attribute, not a field.)
    heartbeat_interval = None

    def heartbeat(self, force: bool = False) -> list[str]:
        """Lifecycle parity with the channel transports: simulated
        members run in the server's own interpreter and cannot wedge
        idle, so a heartbeat wave never evicts anyone."""
        return []

    def poll_rejoins(self, budget: float = 0.0) -> list:
        """Lifecycle parity: the in-process bus has no listener for
        members to dial, so no one ever rejoins."""
        return []

    # -- accounting ---------------------------------------------------------

    def bytes_by_kind(self) -> dict[str, int]:
        """Total wire bytes per message kind."""
        totals: dict[str, int] = {}
        for message in self.log:
            totals[message.kind] = (totals.get(message.kind, 0)
                                    + message.wire_size())
        return totals

    def count_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for message in self.log:
            counts[message.kind] = counts.get(message.kind, 0) + 1
        return counts

    def channel_bytes_by_kind(self) -> dict[str, int]:
        """On-wire bytes per kind (records with a frame attribution).

        Empty on a pure in-process bus; on a channel transport the
        per-kind totals of a fault-free episode sum exactly to the
        bytes that crossed the member channels (see
        ``ChannelTransport.wire_bytes_total``; a dropped member's
        undecodable final bytes never become log records).
        """
        totals: dict[str, int] = {}
        for message in self.log:
            if message.frame_size is not None:
                totals[message.kind] = (totals.get(message.kind, 0)
                                        + message.frame_size)
        return totals
