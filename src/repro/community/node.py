"""A community member: one machine running the protected application.

Each node wraps a managed environment (its running application), can
learn locally over an assigned subset of procedures, and reports run
outcomes to the central manager over the message bus — the Determina
Node Manager role in §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.community.transport import MessageBus
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
    RunResult,
)
from repro.dynamo.patches import Patch
from repro.learning.database import InvariantDatabase
from repro.learning.inference import InferenceEngine
from repro.learning.traces import TraceFrontEnd
from repro.vm.binary import Binary


@dataclass
class NodeStats:
    """Per-node accounting for the §3.1 benefit claims."""

    runs: int = 0
    traced_observations: int = 0
    failures_reported: int = 0
    patches_applied: int = 0


class CommunityNode:
    """One member machine."""

    def __init__(self, name: str, binary: Binary, bus: MessageBus,
                 config: EnvironmentConfig | None = None):
        self.name = name
        self.binary = binary.stripped()
        self.bus = bus
        self.environment = ManagedEnvironment(
            self.binary, config or EnvironmentConfig.full())
        self.stats = NodeStats()
        self._front_end: TraceFrontEnd | None = None
        self._engine: InferenceEngine | None = None
        self._procedures: ProcedureDatabase | None = None
        self._discovery: DiscoveryPlugin | None = None

    # -- learning ------------------------------------------------------------

    def enable_learning(self, traced_procedures: set[int] | None = None,
                        pair_scope: str = "block") -> None:
        """Attach a local Daikon over *traced_procedures* (None = all)."""
        self._procedures = ProcedureDatabase(self.binary)
        self._engine = InferenceEngine(self._procedures,
                                       pair_scope=pair_scope)
        self._front_end = TraceFrontEnd(self._engine, self._procedures,
                                        traced_procedures=traced_procedures)
        self._discovery = DiscoveryPlugin(self._procedures)
        self.environment.cache_plugins.append(self._discovery)
        self.environment.extra_hooks.append(self._front_end)

    def disable_learning(self) -> None:
        if self._front_end is not None:
            self.environment.extra_hooks.remove(self._front_end)
            self._front_end = None
        if self._discovery is not None:
            # Detach the discovery plugin too, so a member re-assigned a
            # second learning shard does not stack stale plugins.
            self.environment.cache_plugins.remove(self._discovery)
            self._discovery = None

    def learn_shard(self, pages: list[bytes],
                    traced_procedures: set[int] | None,
                    pair_scope: str) -> tuple[InvariantDatabase, int]:
        """One complete learning shard: trace *traced_procedures* over
        *pages*, upload, and detach.  Both transports run exactly this
        sequence (the local handle directly, the worker in its command
        loop), so the two cannot drift apart."""
        self.enable_learning(traced_procedures=traced_procedures,
                             pair_scope=pair_scope)
        for page in pages:
            self.run(page)
        database = self.upload_invariants()
        observations = self.stats.traced_observations
        self.disable_learning()
        return database, observations

    def evaluate_candidate(self, patches: list[Patch],
                           payload: bytes) -> RunResult:
        """Trial-run one candidate repair: apply its patches, run the
        input once (without failure reporting — the server judges the
        verdict), and withdraw them.  Both transports run exactly this
        sequence, so the two cannot drift apart."""
        for patch in patches:
            self.apply_patch(patch)
        try:
            return self.environment.run(payload)
        finally:
            for patch in patches:
                self.remove_patch(patch)

    def upload_invariants(self) -> InvariantDatabase:
        """Finalize local inference and upload the invariants (only the
        invariants — never trace data, §3.1) to the central server."""
        if self._engine is None:
            raise RuntimeError(f"node {self.name} is not learning")
        database = self._engine.finalize()
        self.bus.send(self.name, "server", "invariant-upload",
                      database.to_dict())
        return database

    @property
    def procedures(self) -> ProcedureDatabase | None:
        return self._procedures

    # -- running -------------------------------------------------------------

    def run(self, payload: bytes) -> RunResult:
        """Run one input; report any failure to the central manager."""
        result = self.environment.run(payload)
        self.stats.runs += 1
        if self._front_end is not None:
            self.stats.traced_observations = self._front_end.traced
        if result.outcome is Outcome.FAILURE:
            self.stats.failures_reported += 1
            self.bus.send(self.name, "server", "failure-notification", {
                "failure_pc": result.failure_pc,
                "monitor": result.monitor,
                "call_stack": list(result.call_stack),
                "call_sites": list(result.call_sites),
            })
        return result

    # -- patch management ----------------------------------------------------

    def apply_patch(self, patch: Patch) -> None:
        """Apply a patch pushed by the Management Console."""
        self.environment.install_patch(patch)
        self.stats.patches_applied += 1

    def remove_patch(self, patch: Patch) -> None:
        self.environment.remove_patch(patch)
