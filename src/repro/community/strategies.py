"""Distributed learning strategies (§3.1).

Each community member traces only part of the application, so no single
member pays the full (~300x) learning overhead.  A strategy assigns each
member a subset of procedures to trace; the central server merges the
locally inferred invariants.
"""

from __future__ import annotations

import random


def partition_round_robin(procedures: list[int],
                          members: int) -> list[set[int]]:
    """Deterministic round-robin partition of procedure entries."""
    if members < 1:
        raise ValueError("need at least one member")
    assignments: list[set[int]] = [set() for _ in range(members)]
    for index, entry in enumerate(sorted(procedures)):
        assignments[index % members].add(entry)
    return assignments


def partition_random(procedures: list[int], members: int,
                     seed: int = 0) -> list[set[int]]:
    """Random partition — the paper's "randomly chosen small part of
    every running application" strategy, seeded for reproducibility."""
    if members < 1:
        raise ValueError("need at least one member")
    rng = random.Random(seed)
    assignments: list[set[int]] = [set() for _ in range(members)]
    for entry in sorted(procedures):
        assignments[rng.randrange(members)].add(entry)
    return assignments


def overlapping_assignments(procedures: list[int], members: int,
                            redundancy: int = 2) -> list[set[int]]:
    """Assign each procedure to *redundancy* members so the merged model
    reflects more than one user's behaviour per procedure (improving
    learning accuracy, §3's "Learning Accuracy" benefit)."""
    if members < 1:
        raise ValueError("need at least one member")
    redundancy = min(redundancy, members)
    assignments: list[set[int]] = [set() for _ in range(members)]
    for index, entry in enumerate(sorted(procedures)):
        for step in range(redundancy):
            assignments[(index + step) % members].add(entry)
    return assignments
