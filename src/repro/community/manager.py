"""The central ClearView manager for an application community (§3).

Coordinates learning and repair across member machines:

- **Amortized parallel learning** (§3.1): each member traces a subset of
  procedures; the server merges uploaded invariant databases.
- **Failure response** (§3.2): the ClearView core drives correlation and
  repair, with patches pushed to *every* member through the management
  console facade — members never exposed to an attack become immune
  ("Protection Without Exposure").
- **Parallel repair evaluation** (§3.1): candidate repairs can be farmed
  out to different members and evaluated in one round.

The manager is transport-generic: every member interaction goes through
a handle (:mod:`repro.community.members`), so the same code drives the
in-process simulation (``transport="in-process"``, the default), real
per-member worker processes (``transport="process"``,
:mod:`repro.community.sharding`), and multi-host socket members with
optional TLS (``transport="socket"``,
:mod:`repro.community.remote`).  Members a transport drops mid-episode
are excluded and their outstanding work re-sharded across the survivors.

Scatter/gather on the channel transports is genuinely asynchronous: the
transport keeps pumping every member's channel while the server absorbs
replies in deterministic dispatch order, so the manager's merge and
correlation work on early repliers overlaps the stragglers'
still-running commands — without perturbing any observable ordering the
differential suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.community.members import LocalMember, MemberFailure
from repro.community.node import CommunityNode
from repro.community.remote import SocketTransport
from repro.community.sharding import ProcessTransport
from repro.community.strategies import (
    overlapping_assignments,
    partition_random,
    partition_round_robin,
)
from repro.community.transport import MessageBus
from repro.core.clearview import ClearView, ClearViewConfig, SessionState
from repro.core.repair import build_repair_patch
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
    RunResult,
)
from repro.dynamo.guardrails import PatchHealthLedger, TOXIC_KILLS
from repro.dynamo.patches import Patch
from repro.errors import CommunityError
from repro.learning.database import InvariantDatabase
from repro.learning.quarantine import QuarantineBuffer
from repro.vm.binary import Binary

_STRATEGIES = {
    "round-robin": partition_round_robin,
    "random": partition_random,
    "overlapping": overlapping_assignments,
}


class CommunityEnvironment:
    """Management-console facade: looks like one ManagedEnvironment to the
    ClearView core, but fans patches out to every member and runs inputs
    on members round-robin.

    Accepts member handles (or bare :class:`CommunityNode` instances,
    which are wrapped in :class:`LocalMember`).  Members that fail
    mid-command are dropped transparently: runs fail over to the next
    live member, and patch fan-out skips the casualty."""

    def __init__(self, members: list):
        if not members:
            raise ValueError("a community needs at least one member")
        self.members = [member if not isinstance(member, CommunityNode)
                        else LocalMember(member)
                        for member in members]
        self.patches: list[Patch] = []
        self._next = 0
        # The transport's patch ledger doubles as the rejoin journal:
        # community-wide installs/removes are epoch-logged there so a
        # dropped member can catch up on exactly what it missed.  The
        # in-process bus has no ledger (and nothing ever rejoins).
        self._ledger = None
        for member in self.members:
            ledger = getattr(getattr(member, "_transport", None),
                             "ledger", None)
            if ledger is not None:
                self._ledger = ledger
                break

    @property
    def binary(self) -> Binary:
        return self.members[0].binary

    def alive_members(self) -> list:
        return [member for member in self.members if member.alive]

    def run(self, payload: bytes) -> RunResult:
        for _ in range(len(self.members)):
            member = self.members[self._next % len(self.members)]
            self._next += 1
            if not member.alive:
                continue
            try:
                return member.run(payload)
            except MemberFailure:
                continue  # dropped mid-run; fail over to the next member
        raise CommunityError("no live members left to run the input")

    def run_on(self, index: int, payload: bytes) -> RunResult:
        member = self.members[index % len(self.members)]
        if not member.alive:
            raise CommunityError(
                f"member {member.name} has been dropped")
        return member.run(payload)

    def install_patch(self, patch: Patch) -> None:
        if not self.alive_members():
            raise CommunityError("no live members left to patch")
        self.patches.append(patch)
        if self._ledger is not None:
            self._ledger.log_install(patch)
        for member in self.alive_members():
            try:
                member.install_patch(patch)
            except MemberFailure:
                continue
        if not self.alive_members():
            # Every member died during fan-out: the patch reached no one.
            self.patches.remove(patch)
            if self._ledger is not None:
                self._ledger.log_remove(patch)
            raise CommunityError("no live members left to patch")

    def remove_patch(self, patch: Patch) -> None:
        self.patches.remove(patch)
        if self._ledger is not None:
            self._ledger.log_remove(patch)
        for member in self.alive_members():
            try:
                member.remove_patch(patch)
            except MemberFailure:
                continue

    def revoke_patch(self, patch: Patch) -> int:
        """Fleet-wide revocation: withdraw *patch* from every live
        member in one wave, idempotently.

        Unlike :meth:`remove_patch`, a member that no longer holds the
        patch (joined after its install wave, or already caught up past
        its removal) simply acknowledges — a revocation must never cost
        members.  Returns how many members actually held the patch.
        """
        if patch in self.patches:
            self.patches.remove(patch)
            if self._ledger is not None:
                self._ledger.log_remove(patch)
        held = 0
        for member in self.alive_members():
            revoke = getattr(member, "revoke_patch", None)
            try:
                if revoke is not None:
                    held += 1 if revoke(patch) else 0
                else:  # pragma: no cover - all handles implement revoke
                    member.remove_patch(patch)
                    held += 1
            except MemberFailure:
                continue
        return held

    def clear_patches(self, predicate=None) -> int:
        victims = [patch for patch in self.patches
                   if predicate is None or predicate(patch)]
        for patch in victims:
            self.remove_patch(patch)
        return len(victims)

    def probe_wave(self, payload: bytes) -> list[RunResult]:
        """Probe every live member with *payload* in one wave.

        On the channel transports the probes are dispatched to every
        member before any result is gathered, so they genuinely run
        concurrently; members that fail mid-probe are dropped and
        simply missing from the returned results.
        """
        started = []
        for member in self.alive_members():
            try:
                member.start_probe(payload)
            except MemberFailure:
                continue
            started.append(member)
        results = []
        for member in started:
            try:
                results.append(member.finish_probe())
            except MemberFailure:
                continue
        return results

    def probe_many(self, payloads: list[bytes]) -> list["RunResult"]:
        """Probe a batch of inputs across the community, pipelined.

        Payloads are assigned round-robin; each channel member keeps up
        to its pipeline depth of probes in flight, and the server
        collects replies as the pipelines drain — so member compute,
        wire transfer, and the server's own processing all overlap.  A
        member that fails mid-batch has its outstanding payloads
        redistributed across the survivors.  Results come back in
        payload order.
        """
        members = self.alive_members()
        if not members:
            raise CommunityError("no live members left to probe")
        if not hasattr(members[0], "has_capacity"):
            # In-process members execute synchronously; the round-robin
            # assignment below would produce the same results slower.
            return [members[index % len(members)].probe(payload)
                    for index, payload in enumerate(payloads)]
        results: list[RunResult | None] = [None] * len(payloads)
        queues = {member.name: [] for member in members}
        inflight = {member.name: [] for member in members}
        for index in range(len(payloads)):
            queues[members[index % len(members)].name].append(index)
        orphaned: list[int] = []
        while True:
            live = [member for member in members if member.alive]
            if not live:
                raise CommunityError("no live members left to probe")
            if orphaned:
                # Re-shard a casualty's outstanding probes round-robin.
                for offset, index in enumerate(sorted(orphaned)):
                    queues[live[offset % len(live)].name].append(index)
                orphaned = []
            busy = False
            for member in live:
                queue, flight = queues[member.name], inflight[member.name]
                while queue and member.has_capacity():
                    index = queue.pop(0)
                    try:
                        member.start_probe(payloads[index])
                    except MemberFailure:
                        orphaned.append(index)
                        orphaned.extend(queue)
                        orphaned.extend(flight)
                        queue.clear()
                        flight.clear()
                        break
                    flight.append(index)
                busy = busy or bool(queue) or bool(flight)
            if not busy and not orphaned:
                break
            for member in live:
                flight = inflight[member.name]
                if not flight or not member.alive:
                    continue
                index = flight.pop(0)
                try:
                    results[index] = member.finish_probe()
                except MemberFailure:
                    orphaned.append(index)
                    orphaned.extend(flight)
                    orphaned.extend(queues[member.name])
                    flight.clear()
                    queues[member.name].clear()
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]


@dataclass
class DistributedLearningReport:
    """What distributed learning produced (for the §3.1 benches)."""

    database: InvariantDatabase
    procedures: ProcedureDatabase
    per_node_observations: list[int] = field(default_factory=list)
    full_observations: int = 0
    upload_bytes: int = 0
    #: Members that failed mid-learning and had their shards redistributed.
    dropped_members: list[str] = field(default_factory=list)
    #: True when any member was lost this episode: the merged database
    #: still covers every shard (survivors absorbed the casualties'
    #: work), but the community is running below strength.
    degraded: bool = False
    #: Live members at the end of the learning episode.
    alive_members: int = 0
    #: §3.1 delayed incorporation: True when the merged database went
    #: into quarantine instead of the live model (it is released into
    #: the model only after aging out clean — see
    #: :class:`~repro.learning.quarantine.QuarantineBuffer`).
    quarantined: bool = False


class CommunityManager:
    """The centralized server coordinating a WebBrowse community.

    ``transport`` selects the community substrate:

    - ``"in-process"`` (default): members simulated in this process on a
      :class:`MessageBus` — cheap, single-core.
    - ``"process"``: one OS process per member via
      :class:`ProcessTransport` — real serialization, real parallelism.
    - ``"socket"``: one OS process per member dialing a loopback TCP
      listener via :class:`SocketTransport` — the multi-host wire
      protocol (construct a :class:`SocketTransport` directly for TLS
      or externally launched members).
    - any :class:`MessageBus`, :class:`ProcessTransport`, or
      :class:`SocketTransport` instance, for callers managing transport
      lifetime themselves.

    Channel transports own worker processes: call :meth:`close` (or use
    the manager as a context manager) when done.
    """

    _TRANSPORTS = {"in-process": MessageBus, "process": ProcessTransport,
                   "socket": SocketTransport}

    def __init__(self, binary: Binary, members: int = 4,
                 config: EnvironmentConfig | None = None,
                 transport: "str | MessageBus | ProcessTransport | "
                            "SocketTransport | None" = None,
                 worker_timeout: float | None = None,
                 min_members: int = 1,
                 reshard_budget: int | None = None,
                 heartbeat_interval: float | None = None,
                 quarantine_ticks: int = 0):
        self.binary = binary.stripped()
        self.config = config or EnvironmentConfig.full()
        if transport is None:
            transport = "in-process"
        #: The manager owns (and closes) transports it constructs;
        #: caller-provided instances manage their own lifetime.
        self._owns_transport = isinstance(transport, str)
        for knob, value in (("worker_timeout", worker_timeout),
                            ("heartbeat_interval", heartbeat_interval)):
            if value is not None and transport not in ("process", "socket"):
                raise ValueError(
                    f"{knob} only applies to transport='process' or "
                    f"'socket'; configure a transport instance directly "
                    f"otherwise")
        if min_members < 1:
            raise ValueError("min_members must be at least 1")
        #: Quorum policy: episodes raise CommunityError once fewer than
        #: this many members are alive, instead of degrading further.
        self.min_members = min_members
        #: How many re-shard rounds a learning episode may spend
        #: absorbing casualties before giving up (None = unlimited).
        self.reshard_budget = reshard_budget
        if isinstance(transport, str):
            factory = self._TRANSPORTS.get(transport)
            if factory is None:
                raise ValueError(
                    f"unknown transport {transport!r}; choose "
                    f"'in-process', 'process', or 'socket'")
            if factory is MessageBus:
                transport = MessageBus()
            else:
                # worker_timeout is the caller's hang-detection budget
                # for *every* command, learning shards included;
                # construct a transport instance directly to tune the
                # per-op deadline table independently.
                kwargs = {}
                if worker_timeout is not None:
                    kwargs["timeout"] = worker_timeout
                    kwargs["learn_timeout"] = worker_timeout
                if heartbeat_interval is not None:
                    kwargs["heartbeat_interval"] = heartbeat_interval
                transport = factory(**kwargs)
        self.transport = transport
        #: Accounting alias: every transport exposes the MessageBus API.
        self.bus = transport

        names = [f"node-{index}" for index in range(members)]
        if hasattr(transport, "spawn"):
            self.nodes: list[CommunityNode] = []
            self.members = transport.spawn(self.binary, self.config, names)
        else:
            self.nodes = [CommunityNode(name, self.binary, transport,
                                        self.config) for name in names]
            self.members = [LocalMember(node) for node in self.nodes]
        self.environment = CommunityEnvironment(self.members)
        self.database: InvariantDatabase | None = None
        self.procedures: ProcedureDatabase | None = None
        self.clearview: ClearView | None = None
        #: §3.1 delayed incorporation: with ``quarantine_ticks > 0``,
        #: post-bootstrap learning episodes sit in quarantine until
        #: they age out clean (clean attacks tick the buffer; a
        #: detector firing discards everything pending).
        self.quarantine = QuarantineBuffer(
            quarantine_ticks=quarantine_ticks) \
            if quarantine_ticks > 0 else None
        #: Members relaunched after a patch-induced casualty (toxic
        #: candidate containment): the member was not at fault.
        self.revived: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def dropped_members(self) -> list:
        """Members the transport dropped (process transport only)."""
        return list(getattr(self.transport, "dropped", ()))

    def _refresh_membership(self) -> list:
        """Wave-edge lifecycle sweep: admit any members that rejoined
        (or newly arrived) since the last wave, and run a heartbeat
        pass so wedged-idle members are evicted *before* work is
        scattered onto them.  Returns the members admitted."""
        admitted = self.transport.poll_rejoins()
        for member in admitted:
            if member not in self.environment.members:
                # A genuinely new arrival (accept_external), not a
                # revival of a member the environment already tracks.
                self.environment.members.append(member)
        if self.transport.heartbeat_interval is not None:
            self.transport.heartbeat()
        return admitted

    def _require_quorum(self, context: str) -> None:
        alive = len(self.environment.alive_members())
        if alive < self.min_members:
            raise CommunityError(
                f"community below quorum during {context}: {alive} live "
                f"member(s) < min_members={self.min_members}")

    def community_status(self) -> dict:
        """Degraded-mode report: lifecycle state per member, quorum
        health, the transport's casualty list, and the patch-health
        ledger's surveillance summary."""
        states = {member.name: getattr(member, "state", "active")
                  for member in self.environment.members}
        alive = len(self.environment.alive_members())
        health = (self.clearview.guardrails.report()
                  if self.clearview is not None
                  else PatchHealthLedger().report())
        return {
            "members": states,
            "alive": alive,
            "total": len(self.environment.members),
            "min_members": self.min_members,
            "quorum": alive >= self.min_members,
            "degraded": alive < len(self.environment.members),
            "dropped": [dropped.name for dropped in
                        getattr(self.transport, "dropped", ())],
            "patch_health": health,
            "revived": list(self.revived),
        }

    def close(self) -> None:
        """Tear down transport resources (worker processes) — only for
        transports this manager constructed; caller-provided instances
        are left running for the caller to close."""
        if self._owns_transport:
            self.transport.close()

    def __enter__(self) -> "CommunityManager":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Distributed learning (§3.1)
    # ------------------------------------------------------------------

    def discover_procedures(self, pages: list[bytes]) -> ProcedureDatabase:
        """Scout pass: run the workload once with discovery (no tracing)
        to enumerate the application's procedures."""
        procedures = ProcedureDatabase(self.binary)
        scout = ManagedEnvironment(self.binary, self.config)
        scout.cache_plugins.append(DiscoveryPlugin(procedures))
        for page in pages:
            scout.run(page)
        return procedures

    def learn_distributed(self, pages: list[bytes],
                          strategy: str = "round-robin",
                          pair_scope: str = "block"
                          ) -> DistributedLearningReport:
        """Each member traces its assigned procedures over the workload;
        the server merges the uploaded invariants.

        The scatter/gather shape is what the channel transports
        parallelize: every member's shard is dispatched before any
        result is collected, and each upload is merged *as it is
        absorbed* — while the remaining members' shards are still
        running, their replies streaming into channel buffers under the
        transport's reply multiplexer.  Uploads merge in dispatch
        order — member order, then re-shard rounds — so the merged
        database is deterministic regardless of worker completion
        order.  A member that fails mid-shard is dropped and its
        procedures are re-sharded round-robin across the survivors.
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"choose from {sorted(_STRATEGIES)}")
        self._refresh_membership()
        self._require_quorum("distributed learning")
        self.procedures = self.discover_procedures(pages)
        learners = self.environment.alive_members()
        if not learners:
            raise CommunityError(
                "every member failed during distributed learning")
        assignments = _STRATEGIES[strategy](
            self.procedures.entries(), len(learners))

        merged: InvariantDatabase | None = None
        observations = {member.name: 0 for member in self.members}
        dropped: list[str] = []
        reshard_rounds = 0
        wave = list(zip(learners, assignments))
        while wave:
            started = []
            orphaned: list[int] = []
            for member, assignment in wave:
                try:
                    member.start_learn_shard(pages, assignment, pair_scope)
                except MemberFailure as failure:
                    dropped.append(failure.member)
                    orphaned.extend(sorted(assignment))
                    continue
                started.append((member, assignment))
            for member, assignment in started:
                try:
                    database, traced = member.finish_learn_shard()
                except MemberFailure as failure:
                    dropped.append(failure.member)
                    orphaned.extend(sorted(assignment))
                    continue
                # The server's correlation work: merging this upload
                # overlaps the later members' shards, which are still
                # executing (their replies buffer as they arrive).
                merged = database if merged is None \
                    else merged.merge(database)
                observations[member.name] = \
                    observations.get(member.name, 0) + traced
            if not orphaned:
                break
            survivors = self.environment.alive_members()
            if not survivors:
                raise CommunityError(
                    "every member failed during distributed learning")
            self._require_quorum("distributed learning")
            reshard_rounds += 1
            if self.reshard_budget is not None and \
                    reshard_rounds > self.reshard_budget:
                raise CommunityError(
                    f"re-shard budget exhausted during distributed "
                    f"learning ({self.reshard_budget} round(s) allowed, "
                    f"casualties: {sorted(set(dropped))})")
            redistributed = partition_round_robin(orphaned, len(survivors))
            wave = [(member, shard)
                    for member, shard in zip(survivors, redistributed)
                    if shard]

        if merged is None:
            # Possible only when every member died holding an *empty*
            # shard (nothing orphaned to re-distribute).
            raise CommunityError(
                "every member failed during distributed learning")
        quarantined = False
        if self.quarantine is not None and self.database is not None:
            # §3.1 delayed incorporation: the community already has a
            # live model, so this episode's invariants sit in quarantine
            # until they age out clean (clean attacks tick the buffer; a
            # detector firing discards them).
            self.quarantine.submit(merged, source="learn-distributed")
            quarantined = True
        else:
            self.database = merged
        upload_bytes = self.bus.bytes_by_kind().get("invariant-upload", 0)
        per_node = [observations.get(member.name, 0)
                    for member in self.members]
        return DistributedLearningReport(
            database=merged, procedures=self.procedures,
            per_node_observations=per_node,
            full_observations=sum(per_node),
            upload_bytes=upload_bytes,
            dropped_members=dropped,
            degraded=bool(dropped),
            alive_members=len(self.environment.alive_members()),
            quarantined=quarantined)

    def adopt_model(self, database: InvariantDatabase,
                    procedures: ProcedureDatabase) -> None:
        """Install a centrally learned model (e.g. from a single-machine
        learning pass) instead of distributed learning."""
        self.database = database
        self.procedures = procedures

    # ------------------------------------------------------------------
    # Protection (§3.2)
    # ------------------------------------------------------------------

    def protect(self, config: ClearViewConfig | None = None) -> ClearView:
        """Arm the community: the ClearView core over the console facade."""
        if self.database is None or self.procedures is None:
            raise RuntimeError("learn (or adopt a model) before protecting")
        self.clearview = ClearView(self.environment,  # type: ignore[arg-type]
                                   self.database, self.procedures, config)
        return self.clearview

    def attack(self, page: bytes) -> RunResult:
        """Present an attack page to the community (round-robin member).

        Post-deployment surveillance rides along: the core attributes
        the run's terminal event to deployed patches by proximity
        (:meth:`~repro.core.clearview.ClearView.run` folds it into the
        patch-health ledger), and the §3.1 quarantine buffer — when
        armed — ticks on clean completions and discards on detector
        firings.  Member losses are *not* charged here: a member can
        die for reasons that have nothing to do with the deployed
        patch (churn, injected faults), and transport-level churn must
        stay invisible to the repair decisions — candidate-induced
        kills are charged where they can be retried and confirmed, in
        :meth:`evaluate_candidates_in_parallel`.
        """
        if self.clearview is None:
            self.protect()
        assert self.clearview is not None
        self._refresh_membership()
        self._require_quorum("attack presentation")
        result = self.clearview.run(page)
        if self.quarantine is not None:
            if result.outcome is Outcome.FAILURE:
                self.quarantine.report_undesirable_event()
            elif result.outcome is Outcome.COMPLETED:
                for ready in self.quarantine.tick():
                    self._absorb_quarantined(ready)
        return result

    def _absorb_quarantined(self, database: InvariantDatabase) -> None:
        """Fold a quarantine-released learning episode into the live
        model (the protecting core sees it immediately)."""
        self.database = database if self.database is None \
            else self.database.merge(database)
        if self.clearview is not None:
            self.clearview.database = self.database

    def immune_members(self, page: bytes) -> int:
        """How many members survive *page* right now — patched members
        that were never attacked should all survive (Protection Without
        Exposure).  The probes go out as one concurrent wave on the
        channel transports."""
        self._refresh_membership()
        self._require_quorum("immunity probe")
        return sum(1 for result in self.environment.probe_wave(page)
                   if result.outcome is Outcome.COMPLETED)

    # ------------------------------------------------------------------
    # Malicious-node mitigation (§5)
    # ------------------------------------------------------------------

    def validate_failure_report(self, payload: bytes,
                                claimed_failure_pc: int) -> bool:
        """§5 "Malicious Nodes": before acting on a member's failure
        notification, reproduce the error on a trusted machine.  A
        fabricated report (the input does not actually produce a failure
        at the claimed location) is rejected."""
        trusted = ManagedEnvironment(self.binary, self.config)
        result = trusted.run(payload)
        return (result.outcome is Outcome.FAILURE and
                result.failure_pc == claimed_failure_pc)

    def validate_patch_on_trusted_node(self, patches: list[Patch],
                                       exploit_page: bytes,
                                       sample_pages: list[bytes]) -> bool:
        """Evaluate generated *patches* on a trusted node before
        community-wide distribution: the exploit must no longer take
        effect, and the sample legitimate pages must render exactly as
        they do unpatched."""
        reference = ManagedEnvironment(self.binary, self.config)
        expected = [reference.run(page).output for page in sample_pages]

        trusted = ManagedEnvironment(self.binary, self.config)
        for patch in patches:
            trusted.install_patch(patch)
        attacked = trusted.run(exploit_page)
        if attacked.outcome is not Outcome.COMPLETED:
            return False
        for page, outputs in zip(sample_pages, expected):
            result = trusted.run(page)
            if result.outcome is not Outcome.COMPLETED or \
                    result.output != outputs:
                return False
        return True

    # ------------------------------------------------------------------
    # Parallel repair evaluation (§3.1)
    # ------------------------------------------------------------------

    def evaluate_candidates_in_parallel(self, failure_pc: int,
                                        page: bytes) -> int:
        """Evaluate the top candidate repairs for *failure_pc* on distinct
        members in one round; returns the number of rounds used (1 if any
        of the first len(members) candidates succeeds).

        This models §3.1's "Faster Repair Evaluation": with N members the
        community tries N candidate repairs per attack wave instead of 1.
        On the process transport the wave is dispatched to every member
        before any verdict is collected, so candidates genuinely run
        concurrently.

        Toxic-candidate containment: a member that fails mid-trial is
        dropped and its candidate returns to the front of the queue, to
        be retried on a *different* member before the candidate is
        charged — a single casualty may be the member's fault.  A
        candidate that kills :data:`~repro.dynamo.guardrails.TOXIC_KILLS`
        members is marked toxic in the patch-health ledger, blacklisted
        out of the evaluator, and its victims relaunched on transports
        that support respawn (the members were not at fault).
        """
        assert self.clearview is not None
        session = self.clearview.sessions.get(failure_pc)
        if session is None or session.evaluator is None:
            raise RuntimeError("no repair evaluation in progress for "
                               f"{failure_pc:#x}")
        # Take over from the sequential evaluator: withdraw whatever trial
        # repair it had distributed before farming out the candidates
        # (the core's removal path, so surveillance is unwound too).
        self.clearview._remove_current_patches(session)
        guardrails = self.clearview.guardrails
        rounds = 0
        queue = [scored for scored in session.evaluator.ranking()
                 if not scored.blacklisted]
        if self.clearview.config.static_vetting:
            # Pre-deployment vetting: eject statically-unsafe candidates
            # here, before the wave is even formed — they cost zero
            # member kills and zero evaluation rounds.
            admitted = []
            for scored in queue:
                report = self.clearview.vet_candidate(
                    scored.candidate, session.failure_id)
                if report.accepted:
                    admitted.append(scored)
                    continue
                key = scored.candidate.description
                rules = tuple(dict.fromkeys(
                    finding.rule for finding in report.findings))
                session.evaluator.record_failure(scored)
                session.evaluator.blacklist(scored)
                guardrails.record_vetoed(key,
                                         failure_id=session.failure_id,
                                         rules=rules)
                self.clearview.events.append(
                    f"candidate-vetoed {session.failure_id}: {key} "
                    f"[{', '.join(rules)}]")
            queue = admitted
        #: id(scored) -> member handles this candidate killed.
        kills: dict[int, list] = {}

        def charge_kill(member, scored) -> bool:
            """Attribute a casualty; returns True if the candidate
            should be retried (not yet toxic)."""
            key = scored.candidate.description
            victims = kills.setdefault(id(scored), [])
            victims.append(member)
            guardrails.record_member_kill(key, [member.name],
                                          failure_id=session.failure_id)
            if len(victims) < TOXIC_KILLS:
                return True
            # Toxic: eject from the pool for good and make amends to
            # the members it took down.
            session.evaluator.record_failure(scored)
            session.evaluator.blacklist(scored)
            guardrails.record_toxic(key, failure_id=session.failure_id)
            self.clearview.events.append(
                f"candidate-toxic {session.failure_id}: {key}")
            respawn = getattr(self.transport, "respawn", None)
            if respawn is not None:
                for victim in victims:
                    if not victim.alive and respawn(victim):
                        self.revived.append(victim.name)
            return False

        while queue:
            self._refresh_membership()
            self._require_quorum("parallel repair evaluation")
            members = self.environment.alive_members()
            if not members:
                raise CommunityError(
                    "no live members left to evaluate repairs")
            # Greedy best-ranked-first pairing, steering each retried
            # candidate away from members it already killed (best
            # effort: with every live member a prior victim, progress
            # beats avoidance).
            free = list(members)
            wave: list[tuple] = []
            deferred = []
            for scored in queue:
                if not free:
                    deferred.append(scored)
                    continue
                victims = {victim.name
                           for victim in kills.get(id(scored), ())}
                choice = next((member for member in free
                               if member.name not in victims), free[0])
                free.remove(choice)
                wave.append((choice, scored))
            queue = deferred
            rounds += 1
            trials = []
            retry = []   # casualties to requeue (candidate not charged)
            for member, scored in wave:
                patches = build_repair_patch(
                    self.binary, scored.candidate, session.failure_id,
                    database=self.database)
                try:
                    member.start_evaluate_candidate(patches, page)
                except MemberFailure:
                    if charge_kill(member, scored):
                        retry.append(scored)
                    continue
                trials.append((member, scored))
            winner = None
            for member, scored in trials:
                try:
                    result = member.finish_evaluate_candidate()
                except MemberFailure:
                    if charge_kill(member, scored):
                        retry.append(scored)
                    continue
                success = (result.outcome is Outcome.COMPLETED or
                           (result.outcome is Outcome.FAILURE and
                            result.failure_pc != failure_pc))
                if success:
                    session.evaluator.record_success(scored)
                    if winner is None:
                        # Waves iterate best-ranked-first; deploy the
                        # best success, as the sequential evaluator
                        # would (§2.6 ranking).
                        winner = scored
                else:
                    session.evaluator.record_failure(scored)
            # Requeue casualties in their original ranking (wave) order.
            queue[:0] = [scored for _, scored in wave
                         if any(scored is victim for victim in retry)]
            if winner is not None:
                # Distribute the winner community-wide and open its
                # post-deployment surveillance record.
                patches = build_repair_patch(
                    self.binary, winner.candidate, session.failure_id,
                    database=self.database)
                self.environment.clear_patches(
                    lambda patch: patch.failure_id == session.failure_id)
                for patch in patches:
                    self.environment.install_patch(patch)
                session.current_repair = winner
                session.current_patches = patches
                session.state = SessionState.PATCHED
                guardrails.watch(winner.candidate.description,
                                 session.failure_id, patches,
                                 failure_pc=failure_pc)
                return rounds
        return rounds
