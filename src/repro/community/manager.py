"""The central ClearView manager for an application community (§3).

Coordinates learning and repair across member machines:

- **Amortized parallel learning** (§3.1): each member traces a subset of
  procedures; the server merges uploaded invariant databases.
- **Failure response** (§3.2): the ClearView core drives correlation and
  repair, with patches pushed to *every* member through the management
  console facade — members never exposed to an attack become immune
  ("Protection Without Exposure").
- **Parallel repair evaluation** (§3.1): candidate repairs can be farmed
  out to different members and evaluated in one round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.discovery import DiscoveryPlugin, ProcedureDatabase
from repro.community.node import CommunityNode
from repro.community.strategies import (
    overlapping_assignments,
    partition_random,
    partition_round_robin,
)
from repro.community.transport import MessageBus
from repro.core.clearview import ClearView, ClearViewConfig, SessionState
from repro.core.repair import build_repair_patch
from repro.dynamo.execution import (
    EnvironmentConfig,
    ManagedEnvironment,
    Outcome,
    RunResult,
)
from repro.dynamo.patches import Patch
from repro.learning.database import InvariantDatabase
from repro.vm.binary import Binary

_STRATEGIES = {
    "round-robin": partition_round_robin,
    "random": partition_random,
    "overlapping": overlapping_assignments,
}


class CommunityEnvironment:
    """Management-console facade: looks like one ManagedEnvironment to the
    ClearView core, but fans patches out to every member and runs inputs
    on members round-robin."""

    def __init__(self, nodes: list[CommunityNode]):
        if not nodes:
            raise ValueError("a community needs at least one member")
        self.nodes = nodes
        self.patches: list[Patch] = []
        self._next = 0

    @property
    def binary(self) -> Binary:
        return self.nodes[0].binary

    def run(self, payload: bytes) -> RunResult:
        node = self.nodes[self._next % len(self.nodes)]
        self._next += 1
        return node.run(payload)

    def run_on(self, index: int, payload: bytes) -> RunResult:
        return self.nodes[index % len(self.nodes)].run(payload)

    def install_patch(self, patch: Patch) -> None:
        self.patches.append(patch)
        for node in self.nodes:
            node.apply_patch(patch)

    def remove_patch(self, patch: Patch) -> None:
        self.patches.remove(patch)
        for node in self.nodes:
            node.remove_patch(patch)

    def clear_patches(self, predicate=None) -> int:
        victims = [patch for patch in self.patches
                   if predicate is None or predicate(patch)]
        for patch in victims:
            self.remove_patch(patch)
        return len(victims)


@dataclass
class DistributedLearningReport:
    """What distributed learning produced (for the §3.1 benches)."""

    database: InvariantDatabase
    procedures: ProcedureDatabase
    per_node_observations: list[int] = field(default_factory=list)
    full_observations: int = 0
    upload_bytes: int = 0


class CommunityManager:
    """The centralized server coordinating a WebBrowse community."""

    def __init__(self, binary: Binary, members: int = 4,
                 config: EnvironmentConfig | None = None,
                 bus: MessageBus | None = None):
        self.binary = binary.stripped()
        self.bus = bus or MessageBus()
        self.config = config or EnvironmentConfig.full()
        self.nodes = [CommunityNode(f"node-{index}", self.binary, self.bus,
                                    self.config)
                      for index in range(members)]
        self.environment = CommunityEnvironment(self.nodes)
        self.database: InvariantDatabase | None = None
        self.procedures: ProcedureDatabase | None = None
        self.clearview: ClearView | None = None

    # ------------------------------------------------------------------
    # Distributed learning (§3.1)
    # ------------------------------------------------------------------

    def discover_procedures(self, pages: list[bytes]) -> ProcedureDatabase:
        """Scout pass: run the workload once with discovery (no tracing)
        to enumerate the application's procedures."""
        procedures = ProcedureDatabase(self.binary)
        scout = ManagedEnvironment(self.binary, self.config)
        scout.cache_plugins.append(DiscoveryPlugin(procedures))
        for page in pages:
            scout.run(page)
        return procedures

    def learn_distributed(self, pages: list[bytes],
                          strategy: str = "round-robin",
                          pair_scope: str = "block"
                          ) -> DistributedLearningReport:
        """Each member traces its assigned procedures over the workload;
        the server merges the uploaded invariants."""
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"choose from {sorted(_STRATEGIES)}")
        self.procedures = self.discover_procedures(pages)
        assignments = _STRATEGIES[strategy](
            self.procedures.entries(), len(self.nodes))

        uploads: list[InvariantDatabase] = []
        observations: list[int] = []
        for node, assignment in zip(self.nodes, assignments):
            node.enable_learning(traced_procedures=assignment,
                                 pair_scope=pair_scope)
            for page in pages:
                node.run(page)
            uploads.append(node.upload_invariants())
            observations.append(node.stats.traced_observations)
            node.disable_learning()

        merged = uploads[0]
        for upload in uploads[1:]:
            merged = merged.merge(upload)
        self.database = merged
        upload_bytes = self.bus.bytes_by_kind().get("invariant-upload", 0)
        return DistributedLearningReport(
            database=merged, procedures=self.procedures,
            per_node_observations=observations,
            full_observations=sum(observations),
            upload_bytes=upload_bytes)

    def adopt_model(self, database: InvariantDatabase,
                    procedures: ProcedureDatabase) -> None:
        """Install a centrally learned model (e.g. from a single-machine
        learning pass) instead of distributed learning."""
        self.database = database
        self.procedures = procedures

    # ------------------------------------------------------------------
    # Protection (§3.2)
    # ------------------------------------------------------------------

    def protect(self, config: ClearViewConfig | None = None) -> ClearView:
        """Arm the community: the ClearView core over the console facade."""
        if self.database is None or self.procedures is None:
            raise RuntimeError("learn (or adopt a model) before protecting")
        self.clearview = ClearView(self.environment,  # type: ignore[arg-type]
                                   self.database, self.procedures, config)
        return self.clearview

    def attack(self, page: bytes) -> RunResult:
        """Present an attack page to the community (round-robin member)."""
        if self.clearview is None:
            self.protect()
        assert self.clearview is not None
        return self.clearview.run(page)

    def immune_members(self, page: bytes) -> int:
        """How many members survive *page* right now — patched members
        that were never attacked should all survive (Protection Without
        Exposure)."""
        survivors = 0
        for node in self.nodes:
            result = node.environment.run(page)
            if result.outcome is Outcome.COMPLETED:
                survivors += 1
        return survivors

    # ------------------------------------------------------------------
    # Malicious-node mitigation (§5)
    # ------------------------------------------------------------------

    def validate_failure_report(self, payload: bytes,
                                claimed_failure_pc: int) -> bool:
        """§5 "Malicious Nodes": before acting on a member's failure
        notification, reproduce the error on a trusted machine.  A
        fabricated report (the input does not actually produce a failure
        at the claimed location) is rejected."""
        trusted = ManagedEnvironment(self.binary, self.config)
        result = trusted.run(payload)
        return (result.outcome is Outcome.FAILURE and
                result.failure_pc == claimed_failure_pc)

    def validate_patch_on_trusted_node(self, patches: list[Patch],
                                       exploit_page: bytes,
                                       sample_pages: list[bytes]) -> bool:
        """Evaluate generated *patches* on a trusted node before
        community-wide distribution: the exploit must no longer take
        effect, and the sample legitimate pages must render exactly as
        they do unpatched."""
        reference = ManagedEnvironment(self.binary, self.config)
        expected = [reference.run(page).output for page in sample_pages]

        trusted = ManagedEnvironment(self.binary, self.config)
        for patch in patches:
            trusted.install_patch(patch)
        attacked = trusted.run(exploit_page)
        if attacked.outcome is not Outcome.COMPLETED:
            return False
        for page, outputs in zip(sample_pages, expected):
            result = trusted.run(page)
            if result.outcome is not Outcome.COMPLETED or \
                    result.output != outputs:
                return False
        return True

    # ------------------------------------------------------------------
    # Parallel repair evaluation (§3.1)
    # ------------------------------------------------------------------

    def evaluate_candidates_in_parallel(self, failure_pc: int,
                                        page: bytes) -> int:
        """Evaluate the top candidate repairs for *failure_pc* on distinct
        members in one round; returns the number of rounds used (1 if any
        of the first len(nodes) candidates succeeds).

        This models §3.1's "Faster Repair Evaluation": with N members the
        community tries N candidate repairs per attack wave instead of 1.
        """
        assert self.clearview is not None
        session = self.clearview.sessions.get(failure_pc)
        if session is None or session.evaluator is None:
            raise RuntimeError("no repair evaluation in progress for "
                               f"{failure_pc:#x}")
        # Take over from the sequential evaluator: withdraw whatever trial
        # repair it had distributed before farming out the candidates.
        for patch in list(session.current_patches):
            self.environment.remove_patch(patch)
        session.current_patches = []
        session.current_repair = None
        rounds = 0
        ranking = session.evaluator.ranking()
        cursor = 0
        while cursor < len(ranking):
            rounds += 1
            wave = ranking[cursor:cursor + len(self.nodes)]
            cursor += len(wave)
            winner = None
            for node, scored in zip(self.nodes, wave):
                patches = build_repair_patch(
                    self.binary, scored.candidate, session.failure_id,
                    database=self.database)
                for patch in patches:
                    node.apply_patch(patch)
                result = node.environment.run(page)
                success = (result.outcome is Outcome.COMPLETED or
                           (result.outcome is Outcome.FAILURE and
                            result.failure_pc != failure_pc))
                if success:
                    session.evaluator.record_success(scored)
                    winner = scored
                else:
                    session.evaluator.record_failure(scored)
                for patch in patches:
                    node.remove_patch(patch)
            if winner is not None:
                # Distribute the winner community-wide.
                patches = build_repair_patch(
                    self.binary, winner.candidate, session.failure_id,
                    database=self.database)
                self.environment.clear_patches(
                    lambda patch: patch.failure_id == session.failure_id)
                for patch in patches:
                    self.environment.install_patch(patch)
                session.current_repair = winner
                session.current_patches = patches
                session.state = SessionState.PATCHED
                return rounds
        return rounds
