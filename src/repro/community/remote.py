"""Deadline-framed member channels: pipes, sockets, and TLS (§3).

ClearView's community runs each application under a Determina Node
Manager that talks to the Management Console over an encrypted SSL
channel.  This module is that channel made explicit:

- :class:`FramedChannel` carries length-prefixed frames over any stream
  socket (anonymous socketpairs for same-host workers, TCP — optionally
  TLS-wrapped — for multi-host members).  Reads are *deadline-framed*:
  once the first byte of a frame arrives, the complete frame must land
  within :attr:`FramedChannel.frame_deadline` seconds.  That bounds
  time-to-complete-message, not just time-to-first-byte, so a worker
  wedged *mid-write* (SIGSTOPped after a partial reply) or trickling a
  frame slow-loris style is detected and dropped as ``hang`` instead of
  stalling the server forever in a blocking read.
- :class:`ChannelMember` is the transport-generic server-side proxy for
  one worker.  It replaces the old one-``_pending``-slot protocol with a
  bounded *pipeline* of in-flight commands per worker, and its waits are
  multiplexed by the owning transport: while the server blocks on one
  member's reply it keeps pumping every other member's channel, so the
  manager's correlation/merge work overlaps in-flight member runs.
- :class:`ChannelTransport` is the shared transport base (bus-compatible
  accounting, canonical :class:`PatchLedger`, per-op deadline table,
  worker-pool lifecycle); :class:`SocketTransport` implements it over
  TCP with optional TLS, either spawning loopback worker processes or
  accepting externally launched members (``python -m repro community
  --connect HOST:PORT``).
- :func:`serve_channel` is the worker-side command loop both the pipe
  and socket transports run — one implementation, so the two transports
  cannot drift apart.

Failure policy: a worker that crashes (EOF), hangs (no reply within the
per-op deadline, or a frame that fails to complete within the frame
deadline), fails its TLS handshake, or replies with undecodable protocol
is terminated, recorded in :attr:`ChannelTransport.dropped`, and
excluded from further dispatch; the manager re-shards its outstanding
work across the survivors.  Spawned workers are daemonic, terminate is
escalated to SIGKILL (a SIGSTOPped worker ignores SIGTERM until
continued), and :meth:`ChannelTransport.close` is idempotent, so no code
path leaves orphan processes behind.

Member lifecycle (``joining → active → suspect → dropped → rejoining``):
beyond the reactive failure policy above, the transport carries an
active liveness layer.  When ``heartbeat_interval`` is set, a background
prober pings every *idle* channel on that interval (``ping`` has its own
row in the deadline table), so a worker that wedges *between* commands
is evicted within roughly ``heartbeat_interval + ping_timeout`` seconds
instead of poisoning the next wave.  Dropped socket members are not
gone for good: the server's :class:`PatchLedger` journals every
community-wide install/remove under a monotonically increasing *epoch*,
members announce their last acknowledged epoch in an epoch-stamped
hello, and :meth:`SocketTransport.poll_rejoins` re-admits a
reconnecting (or newly arriving) member after replaying exactly the
net ledger deltas it missed — see :meth:`PatchLedger.deltas_since`.

Accounting: every frame that crosses a channel is logged with its true
on-wire size (``Message.frame_size``, length prefix included).  A reply
frame's bytes are attributed exactly once — replayed piggyback bus
entries under their own kind, the remainder under ``reply:<op>`` — so
on a fault-free episode :meth:`ChannelTransport.channel_bytes_by_kind`
totals sum to the bytes that actually crossed the channels
(:meth:`wire_bytes_total`).  A dropped member's final garbage or
partial frame was received but never decoded into a log record, so
faulted episodes reconcile only up to the casualties' dying bytes.
"""

from __future__ import annotations

import multiprocessing
import os
import select
import signal
import socket
import struct
import threading
import time
import typing
from collections import deque
from dataclasses import dataclass

from repro.community import wire
from repro.community.members import MemberFailure, patch_summary
from repro.community.transport import Message, MessageBus
from repro.core.checks import CheckPatch, Observation
from repro.dynamo.execution import EnvironmentConfig, RunResult
from repro.dynamo.patches import Patch
from repro.errors import CommunityError
from repro.vm.binary import Binary

try:  # pragma: no cover - stdlib, but gate for minimal builds
    import ssl
except ImportError:  # pragma: no cover
    ssl = None  # type: ignore[assignment]

#: Non-fatal "try again later" signals from the (possibly TLS) socket.
_WANT_READ: tuple = (ssl.SSLWantReadError,) if ssl else ()
_WANT_WRITE: tuple = (ssl.SSLWantWriteError,) if ssl else ()

#: Exit code a worker uses for an injected crash (distinguishable from
#: interpreter faults in test diagnostics).
_INJECTED_CRASH_EXIT = 37

#: Frame header: 4-byte big-endian payload length.
_HEADER = struct.Struct(">I")

#: Refuse frames larger than this (a corrupt header must not allocate
#: gigabytes before the decode layer can reject the member).
MAX_FRAME_PAYLOAD = 1 << 30


class ChannelError(CommunityError):
    """Base for channel-level failures."""


class ChannelClosed(ChannelError):
    """The peer closed the connection.

    ``mid_frame`` is True when the EOF landed inside a partially
    received frame (a disconnect-mid-frame, not a clean shutdown).
    """

    def __init__(self, detail: str = "peer closed the channel",
                 mid_frame: bool = False):
        super().__init__(detail)
        self.mid_frame = mid_frame


class ChannelTimeout(ChannelError):
    """A read deadline expired.

    ``mid_frame`` distinguishes a frame that *started* but stopped
    making progress toward completion (the wedged-mid-write / slow-loris
    case) from a reply that never began at all.
    """

    def __init__(self, detail: str, mid_frame: bool = False):
        super().__init__(detail)
        self.mid_frame = mid_frame


def _monotonic() -> float:
    return time.monotonic()


class FramedChannel:
    """Length-prefixed frames over a stream socket, with read deadlines.

    The socket is switched to non-blocking mode; all waiting happens in
    explicit ``select`` calls so a caller can multiplex many channels
    (see :meth:`ChannelTransport._await_reply`).  Incoming bytes are
    pumped into an internal buffer and parsed incrementally; complete
    frames queue up, which is what allows a bounded *pipeline* of
    in-flight commands per worker.

    Deadline protocol: :meth:`recv_frame` waits up to ``timeout``
    seconds for a frame to *start* (first byte), and once any bytes of
    the current frame are buffered the complete frame must land within
    :attr:`frame_deadline` seconds of its first byte — partial frames
    that fail to complete in time raise :class:`ChannelTimeout` with
    ``mid_frame=True``.  TLS sockets are supported transparently
    (``ssl.SSLWantReadError`` is treated as "no data yet" and the SSL
    layer's internal buffer is drained before every wait).
    """

    def __init__(self, sock: socket.socket, frame_deadline: float = 30.0):
        sock.setblocking(False)
        self._sock = sock
        self.frame_deadline = frame_deadline
        self._buffer = bytearray()
        self._frames: deque[bytes] = deque()
        self._frame_started: float | None = None
        self._eof = False
        self.closed = False
        #: On-wire byte counters (length prefixes included) for the
        #: accounting invariant per-kind totals are checked against.
        self.sent_bytes = 0
        self.received_bytes = 0

    def fileno(self) -> int:
        return self._sock.fileno()

    # -- receive side --------------------------------------------------

    def _parse(self) -> None:
        """Lift every complete frame out of the byte buffer."""
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_PAYLOAD:
                raise ChannelError(f"oversized frame ({length} bytes)")
            if len(self._buffer) < _HEADER.size + length:
                break
            frame = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            self._frames.append(frame)
        # The partial-frame clock: arms when unparsed bytes linger,
        # clears the moment the buffer sits on a frame boundary.
        if self._buffer:
            if self._frame_started is None:
                self._frame_started = _monotonic()
        else:
            self._frame_started = None

    def pump(self) -> bool:
        """Drain whatever the socket has ready into the frame queue
        without blocking; returns True if any bytes arrived."""
        if self.closed:
            return False
        progressed = False
        while True:
            try:
                chunk = self._sock.recv(65536)
            except (BlockingIOError, InterruptedError, *_WANT_READ):
                break
            except OSError:
                # A dead connection is an EOF, not an exception: bytes
                # already received this call still get parsed below, so
                # a complete reply that crossed the wire just before
                # the reset is surfaced rather than discarded.
                self._eof = True
                break
            if chunk == b"":
                self._eof = True
                break
            self._buffer.extend(chunk)
            self.received_bytes += len(chunk)
            progressed = True
        if progressed:
            self._parse()
        return progressed

    def has_frame(self) -> bool:
        return bool(self._frames)

    def pop_frame(self) -> bytes:
        return self._frames.popleft()

    @property
    def at_eof(self) -> bool:
        return self._eof

    def partial_frame_deadline(self) -> float | None:
        """Absolute monotonic deadline of the in-flight partial frame
        (None when the buffer sits on a frame boundary)."""
        if self._frame_started is None:
            return None
        return self._frame_started + self.frame_deadline

    def _wait_readable(self, timeout: float) -> bool:
        if ssl is not None and isinstance(self._sock, ssl.SSLSocket) and \
                self._sock.pending():
            return True
        try:
            readable, _, _ = select.select([self._sock], [], [],
                                           max(0.0, timeout))
        except (OSError, ValueError) as error:
            raise ChannelClosed(f"channel wait failed: {error}",
                                mid_frame=bool(self._buffer)) from error
        return bool(readable)

    def recv_frame(self, timeout: float | None = None) -> bytes:
        """Wait for one complete frame.

        ``timeout`` bounds time-to-first-byte (None = wait forever for a
        frame to start); :attr:`frame_deadline` bounds first byte to
        complete frame.  Raises :class:`ChannelTimeout` on either
        deadline, :class:`ChannelClosed` on EOF.
        """
        start = _monotonic()
        while True:
            self.pump()
            if self._frames:
                return self._frames.popleft()
            if self._eof:
                raise ChannelClosed(mid_frame=bool(self._buffer))
            now = _monotonic()
            frame_deadline = self.partial_frame_deadline()
            if frame_deadline is not None and now >= frame_deadline:
                raise ChannelTimeout(
                    f"frame stalled mid-receive ({len(self._buffer)} bytes "
                    f"buffered, no complete frame within "
                    f"{self.frame_deadline:.1f}s)", mid_frame=True)
            waits = []
            if frame_deadline is not None:
                waits.append(frame_deadline - now)
            if timeout is not None and frame_deadline is None:
                remaining = timeout - (now - start)
                if remaining <= 0:
                    raise ChannelTimeout(
                        f"no reply within {timeout:.1f}s")
                waits.append(remaining)
            self._wait_readable(min(waits) if waits else 1.0)

    # -- send side -----------------------------------------------------

    def send_frame(self, payload: bytes,
                   timeout: float | None = None) -> int:
        """Write one frame; returns its on-wire size (header included)."""
        frame = _HEADER.pack(len(payload)) + payload
        self.send_raw(frame, timeout)
        return len(frame)

    def send_raw(self, data: bytes, timeout: float | None = None) -> None:
        """Write raw bytes (test hooks use this for partial frames)."""
        view = memoryview(data)
        start = _monotonic()
        while view:
            try:
                sent = self._sock.send(view)
            except (BlockingIOError, InterruptedError, *_WANT_WRITE):
                sent = 0
            except OSError as error:
                raise ChannelClosed(
                    f"channel write failed: {error}") from error
            if sent:
                self.sent_bytes += sent
                view = view[sent:]
                continue
            if timeout is not None and _monotonic() - start > timeout:
                raise ChannelTimeout(
                    f"peer stopped reading ({len(view)} bytes unsent "
                    f"after {timeout:.1f}s)")
            try:
                select.select([], [self._sock], [], 0.05)
            except (OSError, ValueError) as error:
                raise ChannelClosed(
                    f"channel wait failed: {error}") from error

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown races
            pass


class PatchLedger:
    """Canonical-object registry for patches distributed to workers.

    Workers execute *copies* of every patch; the ledger maps a patch id
    back to the server's original so that observation events and fired
    counters land where the ClearView core reads them.

    Entries are *refcounted* per patch id: a patch fanned out to N
    members registers N times, and the canonical object stays resolvable
    while any member still holds it — removing it from one member (or
    dropping that member) must not orphan the others' observation
    events.  The entry is freed when the last holder lets go, so the
    ledger stays bounded across arbitrarily many patch episodes.

    The ledger is also the community's *rejoin journal*: every
    community-wide install/remove is logged under a monotonically
    increasing epoch (:meth:`log_install` / :meth:`log_remove`), members
    acknowledge epochs as they process stamped commands, and a member
    that reconnects after a drop replays exactly
    :meth:`deltas_since` its last acknowledged epoch — net, so an
    install/remove pair that came and went entirely while it was gone
    replays to nothing.  :meth:`compact` forgets cancelled pairs no
    possible rejoiner still needs.
    """

    def __init__(self):
        self._by_id: dict[int, Patch] = {}
        self._refs: dict[int, int] = {}
        #: Monotonic counter of community-wide install/remove events.
        self.epoch = 0
        #: Epoch-stamped journal: ``(epoch, "install"|"remove",
        #: patch_id, patch-or-None)`` in event order.
        self.history: list[tuple[int, str, int, Patch | None]] = []

    def register(self, patch: Patch) -> None:
        patch_id = patch.patch_id
        self._by_id[patch_id] = patch
        self._refs[patch_id] = self._refs.get(patch_id, 0) + 1

    def unregister(self, patch: Patch) -> None:
        self.release(patch.patch_id)

    def release(self, patch_id: int) -> None:
        """Drop one holder's reference; free the entry at zero."""
        refs = self._refs.get(patch_id)
        if refs is None:
            return
        if refs > 1:
            self._refs[patch_id] = refs - 1
        else:
            del self._refs[patch_id]
            self._by_id.pop(patch_id, None)

    def live_entries(self) -> int:
        """How many canonical patches the ledger currently retains."""
        return len(self._by_id)

    def fold_observation(self, patch_id: int, satisfied: bool) -> None:
        patch = self._by_id.get(patch_id)
        if isinstance(patch, CheckPatch) and patch.sink is not None:
            patch.sink.record(Observation(
                failure_id=patch.failure_id, invariant=patch.invariant,
                satisfied=satisfied))

    def fold_fired(self, patch_id: int, delta: int) -> None:
        patch = self._by_id.get(patch_id)
        if patch is not None and hasattr(patch, "fired"):
            patch.fired += delta

    # -- rejoin journal ------------------------------------------------

    def log_install(self, patch: Patch) -> int:
        """Journal a community-wide install; returns its epoch."""
        self.epoch += 1
        self.history.append((self.epoch, "install", patch.patch_id, patch))
        return self.epoch

    def log_remove(self, patch: Patch) -> int:
        """Journal a community-wide remove; returns its epoch."""
        self.epoch += 1
        self.history.append((self.epoch, "remove", patch.patch_id, None))
        return self.epoch

    def deltas_since(self, epoch: int) -> tuple[list[int], list[Patch]]:
        """Net replay for a member whose last acknowledged epoch is
        *epoch*: ``(patch ids to remove, patches to install)``.

        Net means an install the window later removed is skipped
        entirely, and a remove of a patch installed *within* the window
        cancels that pending install instead of being replayed (the
        member never saw it).  Removes are ordered before installs so a
        patch id removed-and-reinstalled across the window replays
        correctly.
        """
        pending: dict[int, Patch] = {}
        removes: list[int] = []
        for entry_epoch, op, patch_id, patch in self.history:
            if entry_epoch <= epoch:
                continue
            if op == "install":
                pending[patch_id] = patch
            elif patch_id in pending:
                del pending[patch_id]
            else:
                removes.append(patch_id)
        return removes, list(pending.values())

    def live_at(self, epoch: int) -> list[Patch]:
        """The community-wide live patch set as of *epoch*, in install
        order (what a member caught up to that epoch holds)."""
        live: dict[int, Patch] = {}
        for entry_epoch, op, patch_id, patch in self.history:
            if entry_epoch > epoch:
                break
            if op == "install":
                live[patch_id] = patch
            else:
                live.pop(patch_id, None)
        return list(live.values())

    def compact(self, floor: int) -> None:
        """Forget install/remove pairs whose remove is at or below
        *floor* — no possible rejoiner needs them replayed.

        Safe when *floor* is at most every member's acknowledged epoch:
        a member acked past the remove already processed both events,
        and a fresh member (hello epoch 0) never saw the install, so
        the cancelled pair nets to nothing for it anyway.  Keeps the
        journal bounded across arbitrarily many patch episodes.
        """
        doomed: set[int] = set()
        open_installs: dict[int, list[int]] = {}
        for index, entry in enumerate(self.history):
            epoch, op, patch_id, _patch = entry
            if op == "install":
                open_installs.setdefault(patch_id, []).append(index)
                continue
            stack = open_installs.get(patch_id)
            install_index = stack.pop() if stack else None
            if install_index is not None and epoch <= floor:
                doomed.add(install_index)
                doomed.add(index)
        if doomed:
            self.history = [entry for index, entry
                            in enumerate(self.history)
                            if index not in doomed]


@dataclass
class DroppedMember:
    """One member the transport gave up on."""

    name: str
    reason: str
    op: str
    detail: str = ""


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _ObservationTap:
    """Worker-local stand-in for the server's ObservationSink.

    Streams ``[patch_id, satisfied]`` events, in execution order, into
    the shared per-command event list the reply carries back.
    """

    def __init__(self, events: list, patch_id: int):
        self._events = events
        self._patch_id = patch_id

    def record(self, observation: Observation) -> None:
        self._events.append([self._patch_id, bool(observation.satisfied)])


class _WorkerState:
    """Everything a worker tracks beside its CommunityNode."""

    def __init__(self):
        #: Live patches by id (install-patch .. remove-patch window).
        self.installed: dict[int, Patch] = {}
        #: This command's trial patches (already withdrawn from the
        #: node), still owed a fired-delta report in the postlude.
        self.trial_patches: list[Patch] = []
        self.reported_fired: dict[int, int] = {}
        #: Capture registry for *installed* patches; trial patches use
        #: an ephemeral registry per command, so repair waves that mint
        #: fresh capture ids every round cannot grow this.
        self.captures: dict[str, object] = {}
        #: Per-capture-id refcounts over ``captures``: a capture/check
        #: pair installed as two commands shares one cell while either
        #: is live; removing the last holder frees the cell, so worker
        #: registries stay bounded across many patch episodes.
        self.capture_refs: dict[str, int] = {}
        self.events: list = []
        self.fault: dict | None = None
        self.last_database: dict | None = None
        self.bus_cursor = 0
        #: Last install/remove epoch this worker acknowledged; echoed in
        #: ping replies and announced in the reconnect hello so the
        #: server replays exactly the missed ledger deltas.
        self.patch_epoch = 0
        #: Armed by the ``wedge-idle`` fault: SIGSTOP *after* the next
        #: reply is fully on the wire, i.e. with no command in flight —
        #: the wedge only the heartbeat prober can notice.
        self.wedge_after_reply = False
        #: The worker's node and bus, attached by :func:`serve_channel`
        #: on first use and reused across reconnects, so a rejoining
        #: member keeps its learned state and warm caches.
        self.node = None
        self.bus = None

    def retain_capture(self, patch: Patch) -> None:
        """Count an installed patch's hold on its capture cell."""
        capture = getattr(patch, "capture", None)
        if capture is not None:
            capture_id = capture.capture_id
            self.capture_refs[capture_id] = \
                self.capture_refs.get(capture_id, 0) + 1

    def release_capture(self, patch: Patch) -> None:
        """Drop a removed patch's hold; free the cell at zero."""
        capture = getattr(patch, "capture", None)
        if capture is None:
            return
        capture_id = capture.capture_id
        refs = self.capture_refs.get(capture_id)
        if refs is None:
            return
        if refs > 1:
            self.capture_refs[capture_id] = refs - 1
        else:
            del self.capture_refs[capture_id]
            self.captures.pop(capture_id, None)


def _decode_patch(state: _WorkerState, payload: dict,
                  captures: dict | None = None) -> Patch:
    patch = wire.patch_from_dict(
        payload, state.captures if captures is None else captures,
        sink=_ObservationTap(state.events, payload["patch_id"]))
    # A re-decoded patch id (remove + reinstall of the same server-side
    # patch) starts from fired=0 again; reset its reporting watermark or
    # the next postlude would fold a spurious negative delta into the
    # canonical counter.
    state.reported_fired[patch.patch_id] = 0
    return patch


def _send_faulted_reply(channel: FramedChannel, mode: str,
                        encoded: bytes, interval: float) -> None:
    """Deliver *encoded* the way the armed wire fault dictates.

    ``stall-mid-write`` writes half the frame then SIGSTOPs the worker —
    the exact wedged-mid-write scenario the deadline framing exists to
    catch.  ``slow-loris`` trickles the frame in chunks slower than any
    sane frame deadline.  ``disconnect-mid-frame`` writes half the frame
    and drops the connection.
    """
    frame = _HEADER.pack(len(encoded)) + encoded
    half = max(_HEADER.size + 1, len(frame) // 2)
    if mode == "stall-mid-write":
        channel.send_raw(frame[:half])
        os.kill(os.getpid(), signal.SIGSTOP)
        # Only reached if somebody SIGCONTs the worker; never finish the
        # frame — the server must already have dropped this member.
        time.sleep(3600)
    elif mode == "slow-loris":
        step = max(1, len(frame) // 64)
        for offset in range(0, len(frame), step):
            channel.send_raw(frame[offset:offset + step])
            time.sleep(interval)
    elif mode == "disconnect-mid-frame":
        channel.send_raw(frame[:half])
        channel.close()
        os._exit(_INJECTED_CRASH_EXIT)


def serve_channel(channel: FramedChannel, name: str, binary: Binary,
                  config: EnvironmentConfig | None,
                  state: _WorkerState | None = None
                  ) -> tuple[_WorkerState, str]:
    """The command loop of one community member process.

    Channel-generic: the process transport runs it over an anonymous
    socketpair, the socket transport over a (possibly TLS) TCP
    connection — one loop, so the transports cannot drift apart.

    Passing a previous call's *state* resumes the same worker session
    (node, installed patches, acknowledged epoch) on a fresh channel —
    the reconnect path of :func:`run_member`.  Returns ``(state,
    reason)`` where *reason* is ``"shutdown"`` after a polite bye and
    ``"channel-error"`` when the connection was lost.
    """
    # Import here: under the fork start method the child inherits the
    # parent's modules anyway, but a spawn fallback must import fresh.
    from repro.community.node import CommunityNode

    if state is None:
        state = _WorkerState()
        state.bus = MessageBus()
        state.node = CommunityNode(name, binary, state.bus, config)
    bus = state.bus
    node = state.node

    def handle(request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "epoch": state.patch_epoch}
        if op == "learn-shard":
            procedures = request["procedures"]
            database, observations = node.learn_shard(
                [bytes.fromhex(page) for page in request["pages"]],
                None if procedures is None else set(procedures),
                request["pair_scope"])
            state.last_database = database.to_dict()
            return {"ok": True, "observations": observations}
        if op == "run":
            result = node.run(bytes.fromhex(request["payload"]))
            return {"ok": True, "result": wire.run_result_to_dict(result)}
        if op == "probe":
            result = node.environment.run(bytes.fromhex(request["payload"]))
            return {"ok": True, "result": wire.run_result_to_dict(result)}
        if op == "install-patch":
            patch = _decode_patch(state, request["patch"])
            node.apply_patch(patch)
            state.installed[patch.patch_id] = patch
            state.retain_capture(patch)
            epoch = request.get("epoch")
            if epoch is not None:
                state.patch_epoch = int(epoch)
            return {"ok": True}
        if op == "remove-patch":
            patch = state.installed.pop(request["patch_id"], None)
            if patch is None:
                return {"ok": False,
                        "error": f"patch {request['patch_id']} not applied"}
            node.remove_patch(patch)
            # No delta can be pending: fired only moves during run-style
            # commands, whose own replies already drained it.
            state.reported_fired.pop(patch.patch_id, None)
            state.release_capture(patch)
            epoch = request.get("epoch")
            if epoch is not None:
                state.patch_epoch = int(epoch)
            return {"ok": True}
        if op == "revoke-patch":
            # Fleet-wide revocation: idempotent by design.  A member
            # that never held the patch (joined after its wave, or
            # already caught up past its removal) acknowledges instead
            # of erroring — a revocation wave must never cost members.
            patch = state.installed.pop(request["patch_id"], None)
            held = patch is not None
            if held:
                node.remove_patch(patch)
                state.reported_fired.pop(patch.patch_id, None)
                state.release_capture(patch)
            epoch = request.get("epoch")
            if epoch is not None:
                state.patch_epoch = int(epoch)
            return {"ok": True, "held": held}
        if op == "catch-up":
            # Rejoin replay: the net ledger deltas since this worker's
            # acknowledged epoch, removes strictly before installs.
            removes, installs, epoch = wire.catch_up_from_dict(request)
            missing = [patch_id for patch_id in removes
                       if patch_id not in state.installed]
            if missing:
                return {"ok": False,
                        "error": f"catch-up removes unheld patches "
                                 f"{missing}"}
            for patch_id in removes:
                patch = state.installed.pop(patch_id)
                node.remove_patch(patch)
                state.reported_fired.pop(patch_id, None)
                state.release_capture(patch)
            for payload in installs:
                patch = _decode_patch(state, payload)
                node.apply_patch(patch)
                state.installed[patch.patch_id] = patch
                state.retain_capture(patch)
            state.patch_epoch = epoch
            return {"ok": True, "installed": sorted(state.installed)}
        if op == "evaluate-candidate":
            trial_captures: dict[str, object] = {}
            patches = [_decode_patch(state, payload, trial_captures)
                       for payload in request["patches"]]
            state.trial_patches = patches
            result = node.evaluate_candidate(
                patches, bytes.fromhex(request["payload"]))
            return {"ok": True, "result": wire.run_result_to_dict(result)}
        if op == "applied-patches":
            return {"ok": True,
                    "patches": [patch_summary(patch)
                                for patch in node.environment.patches]}
        if op == "report-database":
            return {"ok": True, "database": state.last_database}
        if op == "stats":
            stats = node.stats
            return {"ok": True, "stats": {
                "runs": stats.runs,
                "traced_observations": stats.traced_observations,
                "failures_reported": stats.failures_reported,
                "patches_applied": stats.patches_applied,
            }}
        if op == "debug-state":
            # Test/console introspection: the registry footprint the
            # refcounting satellites bound.
            return {"ok": True,
                    "capture_cells": sorted(state.captures),
                    "capture_refs": {key: value for key, value
                                     in sorted(state.capture_refs.items())},
                    "installed_patches": sorted(state.installed)}
        if op == "inject-fault":
            if request["mode"] == "wedge-idle":
                # SIGSTOP only after this reply is fully delivered: the
                # worker wedges *between* commands, invisible to every
                # reply deadline — exactly what heartbeat probing is for.
                state.wedge_after_reply = True
                return {"ok": True}
            state.fault = {"mode": request["mode"],
                           "op": request.get("at", "*"),
                           "seconds": request.get("seconds", 3600)}
            return {"ok": True}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    reason = "channel-error"
    while True:
        try:
            raw = channel.recv_frame()
        except ChannelError:
            break
        try:
            request = wire.decode(raw)
            op = request.get("op", "?")
        except wire.WireError:
            request, op = {"op": "?"}, "?"

        fault = state.fault
        armed = fault is not None and fault["op"] in ("*", op)
        if armed:
            state.fault = None
            if fault["mode"] == "crash":
                os._exit(_INJECTED_CRASH_EXIT)
            if fault["mode"] == "hang":
                time.sleep(fault["seconds"])
                continue  # never answers; the server times out first
            if fault["mode"] == "garbage":
                try:
                    channel.send_frame(b"\xffnot json\x00")
                except ChannelError:
                    break
                continue
            if fault["mode"] == "hollow":
                # Decodable JSON, protocol-shaped, missing every field
                # the command's reply must carry.
                try:
                    channel.send_frame(wire.encode({"ok": True}))
                except ChannelError:
                    break
                continue
            # Wire-level faults (stall-mid-write, slow-loris,
            # disconnect-mid-frame) corrupt the *delivery* of a genuine
            # reply, so fall through to handle the command normally.

        try:
            response = handle(request)
        except Exception as error:  # noqa: BLE001 - reported to the server
            response = {"ok": False,
                        "error": f"{type(error).__name__}: {error}"}

        # Postlude: attach everything the server must fold back.
        new_messages = bus.log[state.bus_cursor:]
        state.bus_cursor = len(bus.log)
        response["bus"] = [{"sender": m.sender, "recipient": m.recipient,
                            "kind": m.kind, "payload": m.payload}
                           for m in new_messages]
        # Each entry's canonical size, computed here in the worker (the
        # entries serialize identically standalone and inside the reply
        # frame), so the server can attribute reply-frame bytes per kind
        # without re-encoding the largest payloads on its gather path.
        response["bus_sizes"] = [len(wire.encode(entry))
                                 for entry in response["bus"]]
        fired: dict[str, int] = {}
        for patch in list(state.installed.values()) + state.trial_patches:
            current = getattr(patch, "fired", 0)
            delta = current - state.reported_fired.get(patch.patch_id, 0)
            if delta:
                fired[str(patch.patch_id)] = delta
                state.reported_fired[patch.patch_id] = current
        for patch in state.trial_patches:
            # Trial patches are done after this report; drop their
            # watermarks so worker state stays bounded over long lives.
            state.reported_fired.pop(patch.patch_id, None)
        state.trial_patches = []
        response["fired"] = fired
        # Drain in place: installed taps hold a reference to this list.
        response["events"] = list(state.events)
        state.events.clear()
        try:
            encoded = wire.encode(response)
            if armed and fault["mode"] in ("stall-mid-write", "slow-loris",
                                           "disconnect-mid-frame"):
                _send_faulted_reply(channel, fault["mode"], encoded,
                                    float(fault["seconds"]))
            else:
                channel.send_frame(encoded)
        except ChannelError:
            break
        if state.wedge_after_reply:
            state.wedge_after_reply = False
            os.kill(os.getpid(), signal.SIGSTOP)
        if response.get("bye"):
            reason = "shutdown"
            break
    channel.close()
    return state, reason


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------

class ChannelMember:
    """Server-side proxy for one worker over a :class:`FramedChannel`.

    Implements the same handle API as
    :class:`~repro.community.members.LocalMember`.  Commands are posted
    without waiting (`post`), replies collected FIFO (`collect`), and up
    to :attr:`pipeline_depth` commands may be in flight at once — the
    worker's command loop answers them in order, so replies correlate by
    position.  Waiting is delegated to the transport, which pumps every
    sibling channel while this member's reply is awaited.
    """

    def __init__(self, transport: "ChannelTransport", name: str,
                 binary: Binary, channel: FramedChannel | None,
                 process=None):
        self._transport = transport
        self.name = name
        self.binary = binary
        self.channel = channel
        self.process = process
        self.alive = channel is not None
        #: Lifecycle state: ``joining → active → suspect → dropped →
        #: rejoining → active``.  ``suspect`` is transient while a
        #: heartbeat ping is outstanding; ``rejoining`` while a
        #: reconnected member replays its ledger catch-up.
        self.state = "active" if channel is not None else "joining"
        #: Last patch-ledger epoch this member acknowledged (0 = none);
        #: a rejoin replays the deltas after this point.
        self.acked_epoch = 0
        #: When this member last completed traffic; the heartbeat
        #: prober only pings channels idle longer than its interval.
        self.last_activity = _monotonic()
        #: FIFO of (op, posted_at) for in-flight commands.
        self._pending: deque[tuple[str, float]] = deque()
        #: When the previous reply completed — each pipelined command's
        #: hang clock starts when the worker could have started it, not
        #: when it was posted behind a queue.
        self._last_reply_at = _monotonic()
        self.pipeline_depth = transport.pipeline_depth
        self._trial_patches: list[Patch] = []
        #: Patch ids this member's installs registered on the ledger;
        #: dropping the member releases them, so a casualty holding
        #: patches cannot pin ledger entries forever.
        self._ledger_ids: list[int] = []

    # -- low-level protocol --------------------------------------------

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    def has_capacity(self) -> bool:
        return self.alive and len(self._pending) < self.pipeline_depth

    def post(self, op: str, **payload) -> None:
        """Send one command without waiting for the reply."""
        with self._transport._channel_lock:
            self._post_locked(op, **payload)

    def _post_locked(self, op: str, **payload) -> None:
        if not self.alive:
            raise MemberFailure(self.name, "crash", "member already dropped")
        if len(self._pending) >= self.pipeline_depth:
            raise CommunityError(
                f"member {self.name} pipeline full "
                f"({self.pipeline_depth} commands in flight); collect a "
                f"reply first")
        request = {"op": op, **payload}
        encoded = wire.encode(request)
        try:
            frame_size = self.channel.send_frame(
                encoded, timeout=self._transport.frame_deadline)
        except ChannelTimeout as error:
            self._fail("hang", op, str(error), cause=error)
        except ChannelError as error:
            self._fail("crash", op, str(error), cause=error)
        # Log only after a successful write, with the frame's exact
        # on-wire byte count; the request dict is owned by this call, so
        # no defensive copy is needed.
        self._transport.deliver(Message(
            sender="server", recipient=self.name, kind=f"cmd:{op}",
            payload=request, encoded_size=len(encoded),
            frame_size=frame_size))
        self._pending.append((op, _monotonic()))
        self.last_activity = _monotonic()

    def collect(self) -> dict:
        """Wait for the oldest in-flight reply; fold its side effects."""
        with self._transport._channel_lock:
            return self._collect_locked()

    def _collect_locked(self) -> dict:
        assert self._pending, "no command in flight"
        op, posted_at = self._pending.popleft()
        timeout = self._transport.timeout_for(op)
        # A pipelined command's budget starts when its predecessor's
        # reply landed (the earliest the worker could have begun it).
        base = max(posted_at, self._last_reply_at)
        remaining = timeout - (_monotonic() - base)
        try:
            raw = self._transport._await_reply(self, remaining)
        except ChannelTimeout as error:
            self._fail("hang", op, str(error), cause=error)
        except ChannelClosed as error:
            if self.process is not None and not self._process_alive():
                self._fail("crash", op, "worker process died", cause=error)
            self._fail("crash", op, str(error), cause=error)
        except ChannelError as error:
            # Protocol-level surprises (e.g. an oversized frame header)
            # mean the member's byte stream cannot be trusted.
            self._fail("malformed", op, str(error), cause=error)
        self._last_reply_at = _monotonic()
        self.last_activity = self._last_reply_at
        try:
            response = wire.decode(raw)
        except wire.WireError as error:
            self._fail("malformed", op, str(error), cause=error)
        # Replay member-originated messages (failure notifications,
        # invariant uploads) onto the server transport, then fold
        # observation/fired state into the canonical patches.  Any
        # structural surprise in a decoded reply is a malformed member,
        # same as undecodable bytes.
        frame_size = _HEADER.size + len(raw)
        replayed_bytes = 0
        try:
            # Every genuine worker reply carries the postlude fields;
            # their absence means the reply did not come from the
            # command loop and the member's state cannot be trusted.
            # Member-originated messages ride piggyback on the reply;
            # pop them so each byte is accounted exactly once — under
            # its own kind for the replayed messages (with the
            # worker-computed canonical size, byte-identical to the
            # entry's slice of the reply frame), under reply:<op> for
            # the rest of the frame.
            sizes = response.pop("bus_sizes")
            entries = response.pop("bus")
            for entry, entry_size in zip(entries, sizes, strict=True):
                # Freshly decoded off the channel: already an
                # independent copy, deliver without re-serializing.
                replayed_bytes += int(entry_size)
                self._transport.deliver(Message(
                    sender=entry["sender"], recipient=entry["recipient"],
                    kind=entry["kind"], payload=entry["payload"],
                    frame_size=int(entry_size)))
            ledger = self._transport.ledger
            for event in response["events"]:
                ledger.fold_observation(int(event[0]), bool(event[1]))
            for patch_id, delta in response["fired"].items():
                ledger.fold_fired(int(patch_id), int(delta))
        except (TypeError, KeyError, ValueError, IndexError,
                AttributeError) as error:
            self._fail("malformed", op, str(error), cause=error)
        self._transport.deliver(Message(
            sender=self.name, recipient="server", kind=f"reply:{op}",
            payload=response, frame_size=frame_size - replayed_bytes))
        if response.get("ok") is not True:
            self._fail("error", op, str(response.get("error",
                                                     "unspecified")))
        if self.state == "suspect":
            self.state = "active"
        return response

    def _expect(self, op: str, extract):
        """Pull fields out of a reply; a reply missing what the protocol
        promises drops the member as malformed."""
        try:
            return extract()
        except (KeyError, TypeError, ValueError, IndexError,
                wire.WireError) as error:
            self._fail("malformed", op, str(error), cause=error)

    def call(self, op: str, **payload) -> dict:
        self.post(op, **payload)
        return self.collect()

    def _process_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def _drop(self, reason: str, op: str, detail: str) -> None:
        self.alive = False
        self.state = "dropped"
        self._pending.clear()
        # Release this casualty's holds on the canonical patch ledger;
        # survivors holding the same patches keep the entries live.
        ledger = self._transport.ledger
        for patch_id in self._ledger_ids:
            ledger.release(patch_id)
        self._ledger_ids = []
        self._transport.dropped.append(
            DroppedMember(name=self.name, reason=reason, op=op,
                          detail=detail))
        self._terminate()

    def _fail(self, reason: str, op: str, detail: str,
              cause: BaseException | None = None) -> typing.NoReturn:
        """Drop this member and raise the matching MemberFailure — one
        place, so the recorded drop and the raised exception can never
        diverge."""
        self._drop(reason, op, detail)
        raise MemberFailure(self.name, reason, detail) from cause

    def _terminate(self) -> None:
        if self.process is not None:
            try:
                if self.process.is_alive():
                    self.process.terminate()
                self.process.join(timeout=1)
                if self.process.is_alive():
                    # A SIGSTOPped worker leaves SIGTERM pending until
                    # someone SIGCONTs it; SIGKILL works regardless.
                    self.process.kill()
                    self.process.join(timeout=5)
            except (OSError, ValueError):  # pragma: no cover - teardown
                pass
        if self.channel is not None:
            self.channel.close()

    def adopt_channel(self, channel: FramedChannel, process=None) -> None:
        """Revive a dropped (or never-joined) member on a fresh channel.

        The rejoin path: the old process handle and channel are reaped
        first, then the member restarts its protocol clocks in state
        ``rejoining`` — it is only re-admitted to dispatch once the
        transport's ledger catch-up completes and flips it to
        ``active``.
        """
        if self.alive:
            raise CommunityError(
                f"member {self.name} is still connected")
        self._terminate()
        self.channel = channel
        self.process = process
        self.alive = True
        self.state = "rejoining"
        self._pending.clear()
        self._last_reply_at = _monotonic()
        self.last_activity = _monotonic()

    # -- member handle API ---------------------------------------------

    def start_learn_shard(self, pages: list[bytes],
                          procedures: set[int] | None,
                          pair_scope: str) -> None:
        self.post("learn-shard",
                  procedures=(None if procedures is None
                              else sorted(procedures)),
                  pair_scope=pair_scope,
                  pages=[page.hex() for page in pages])

    def finish_learn_shard(self):
        from repro.learning.database import InvariantDatabase

        mark = len(self._transport.log)
        response = self.collect()
        upload = None
        for message in self._transport.log[mark:]:
            if message.kind == "invariant-upload" and \
                    message.sender == self.name:
                upload = message.payload
        if upload is None:
            self._fail("malformed", "learn-shard",
                       "no invariant upload in reply")
        return self._expect("learn-shard", lambda: (
            InvariantDatabase.from_dict(upload),
            int(response["observations"])))

    def run(self, payload: bytes) -> RunResult:
        response = self.call("run", payload=payload.hex())
        return self._expect("run", lambda:
                            wire.run_result_from_dict(response["result"]))

    def probe(self, payload: bytes) -> RunResult:
        self.start_probe(payload)
        return self.finish_probe()

    def start_probe(self, payload: bytes) -> None:
        self.post("probe", payload=payload.hex())

    def finish_probe(self) -> RunResult:
        response = self.collect()
        return self._expect("probe", lambda:
                            wire.run_result_from_dict(response["result"]))

    def install_patch(self, patch: Patch) -> None:
        ledger = self._transport.ledger
        ledger.register(patch)
        self._ledger_ids.append(patch.patch_id)
        self.call("install-patch", patch=wire.patch_to_dict(patch),
                  epoch=ledger.epoch)
        self.acked_epoch = ledger.epoch

    def remove_patch(self, patch: Patch) -> None:
        ledger = self._transport.ledger
        self.call("remove-patch", patch_id=patch.patch_id,
                  epoch=ledger.epoch)
        if patch.patch_id in self._ledger_ids:
            self._ledger_ids.remove(patch.patch_id)
        ledger.unregister(patch)
        self.acked_epoch = ledger.epoch

    def revoke_patch(self, patch: Patch) -> bool:
        """Idempotent removal for revocation waves.

        Unlike :meth:`remove_patch`, a member that does not hold the
        patch acknowledges (``held`` False) instead of being dropped
        as errored.  Returns whether the member actually held it.
        """
        ledger = self._transport.ledger
        response = self.call("revoke-patch", patch_id=patch.patch_id,
                             epoch=ledger.epoch)
        held = bool(response.get("held"))
        if held:
            if patch.patch_id in self._ledger_ids:
                self._ledger_ids.remove(patch.patch_id)
            ledger.unregister(patch)
        self.acked_epoch = ledger.epoch
        return held

    def applied_patches(self) -> list[dict]:
        response = self.call("applied-patches")
        return self._expect("applied-patches",
                            lambda: list(response["patches"]))

    def start_evaluate_candidate(self, patches: list[Patch],
                                 payload: bytes) -> None:
        for patch in patches:
            self._transport.ledger.register(patch)
        self._trial_patches = list(patches)
        try:
            self.post("evaluate-candidate",
                      patches=[wire.patch_to_dict(patch)
                               for patch in patches],
                      payload=payload.hex())
        except MemberFailure:
            for patch in self._trial_patches:
                self._transport.ledger.unregister(patch)
            self._trial_patches = []
            raise

    def finish_evaluate_candidate(self) -> RunResult:
        try:
            response = self.collect()
        finally:
            for patch in self._trial_patches:
                self._transport.ledger.unregister(patch)
            self._trial_patches = []
        return self._expect("evaluate-candidate", lambda:
                            wire.run_result_from_dict(response["result"]))

    def stats(self):
        from repro.community.node import NodeStats

        response = self.call("stats")
        return self._expect("stats",
                            lambda: NodeStats(**response["stats"]))

    def report_database(self):
        """Console query: the member's most recently learned shard
        database (None if it has not learned yet)."""
        from repro.learning.database import InvariantDatabase

        response = self.call("report-database")
        return self._expect("report-database", lambda: (
            None if response["database"] is None
            else InvariantDatabase.from_dict(response["database"])))

    def inject_fault(self, mode: str, at: str = "*",
                     seconds: float = 3600.0) -> None:
        """Test hook: arm a one-shot fault in the worker, triggered by
        the next command whose op matches *at*.

        Modes: ``crash`` (the process dies), ``hang`` (sleeps past the
        timeout without a byte), ``garbage`` (undecodable reply bytes),
        ``hollow`` (decodable reply missing the protocol's fields),
        ``stall-mid-write`` (writes half the reply frame, then SIGSTOPs
        itself — the wedged-mid-write scenario), ``slow-loris`` (writes
        the reply in trickled chunks, *seconds* apart, so the frame
        never completes within the deadline), ``disconnect-mid-frame``
        (writes half the frame and drops the connection),
        ``wedge-idle`` (SIGSTOPs *after* delivering this command's
        reply, with nothing in flight — only heartbeat probing can
        evict it)."""
        self.call("inject-fault", mode=mode, at=at, seconds=seconds)

    def shutdown(self) -> None:
        # Only attempt the polite protocol when the channel is idle; a
        # member mid-command (e.g. teardown after an aborted scatter) is
        # simply terminated.
        if self.alive and not self._pending:
            try:
                self.call("shutdown")
            except MemberFailure:
                pass
        self.alive = False
        self._terminate()


class ChannelTransport:
    """Shared base for channel transports, with bus-compatible accounting.

    Exposes the same ``subscribe``/``send``/``log``/``bytes_by_kind``
    API as :class:`MessageBus` (every command, reply, and replayed
    member message is logged, with both its canonical payload size and
    its true on-wire frame attribution), plus the worker pool
    management, the per-op deadline table, and the reply multiplexer
    that overlaps the server's work with in-flight member runs.
    """

    def __init__(self, timeout: float = 60.0, learn_timeout: float = 300.0,
                 run_timeout: float | None = None,
                 frame_deadline: float = 30.0, pipeline_depth: int = 4,
                 heartbeat_interval: float | None = None,
                 ping_timeout: float | None = None):
        self.timeout = timeout
        self.learn_timeout = learn_timeout
        # Run-style ops execute whole episodes inside the worker
        # (evaluate-candidate applies trial patches and runs the full
        # input); racing them against the short control-op timeout
        # drops healthy-but-slow members, so they get their own row in
        # the deadline table.  An explicit table, not a prefix match: a
        # future `learn-profile` op must make a deliberate choice here
        # rather than silently inheriting the five-minute budget.
        self.run_timeout = learn_timeout if run_timeout is None \
            else run_timeout
        self.op_timeouts: dict[str, float] = {
            "learn-shard": self.learn_timeout,
            "evaluate-candidate": self.run_timeout,
            "run": self.run_timeout,
            "probe": self.run_timeout,
            # The liveness probe is deliberately cheap: a
            # healthy-but-busy member is never pinged (the prober skips
            # channels with commands in flight), so a ping that does not
            # answer promptly is a wedged-idle worker.  Defaults to the
            # control-op deadline; heartbeat users tighten it so
            # eviction lands within seconds.
            "ping": ping_timeout if ping_timeout is not None else timeout,
        }
        self.frame_deadline = frame_deadline
        self.pipeline_depth = pipeline_depth
        #: Probe idle channels every this many seconds (None = no
        #: heartbeat thread; explicit ``heartbeat(force=True)`` still
        #: works for deterministic tests and wave-edge sweeps).
        self.heartbeat_interval = heartbeat_interval
        self.ping_timeout = self.op_timeouts["ping"]
        self._bus = MessageBus()
        self.ledger = PatchLedger()
        self.members: list[ChannelMember] = []
        self.dropped: list[DroppedMember] = []
        self._closed = False
        #: Serialises channel traffic between the server thread and the
        #: heartbeat prober.  Re-entrant: a heartbeat wave posts and
        #: collects pings while holding it, and the server's own nested
        #: post/collect pairs stay atomic with respect to the prober.
        self._channel_lock = threading.RLock()
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None

    # -- bus-compatible accounting -------------------------------------

    @property
    def log(self) -> list[Message]:
        return self._bus.log

    def subscribe(self, name: str, handler) -> None:
        self._bus.subscribe(name, handler)

    def send(self, sender: str, recipient: str, kind: str,
             payload: dict) -> Message:
        return self._bus.send(sender, recipient, kind, payload)

    def deliver(self, message: Message) -> Message:
        return self._bus.deliver(message)

    def bytes_by_kind(self) -> dict[str, int]:
        return self._bus.bytes_by_kind()

    def count_by_kind(self) -> dict[str, int]:
        return self._bus.count_by_kind()

    def channel_bytes_by_kind(self) -> dict[str, int]:
        return self._bus.channel_bytes_by_kind()

    def wire_bytes_total(self) -> int:
        """Bytes that actually crossed the member channels (both
        directions, length prefixes included) — the ground truth the
        per-kind channel totals sum to on fault-free episodes (a
        dropped member's undecodable final bytes are counted here but
        never reached the log)."""
        total = 0
        for member in self.members:
            if member.channel is not None:
                total += member.channel.sent_bytes
                total += member.channel.received_bytes
        return total

    def timeout_for(self, op: str) -> float:
        """Per-op reply deadline (the explicit table; no prefix games)."""
        return self.op_timeouts.get(op, self.timeout)

    # -- member lifecycle ----------------------------------------------

    def heartbeat(self, force: bool = False) -> list[str]:
        """Ping idle members; evict the ones that fail to answer.

        Only members with no command in flight are probed (a busy
        member proves liveness with its own replies, and a ping posted
        behind a long-running command would race that command's
        deadline).  Pings are posted to every candidate first and
        collected after, so N suspects cost one ``ping_timeout``, not
        N.  ``force`` probes all idle members regardless of how
        recently they spoke.  Returns the names evicted this wave.
        """
        evicted: list[str] = []
        with self._channel_lock:
            interval = self.heartbeat_interval
            now = _monotonic()
            suspects: list[ChannelMember] = []
            for member in self.members:
                if not member.alive or member.pending_ops:
                    continue
                if not force and (interval is None or
                                  now - member.last_activity < interval):
                    continue
                member.state = "suspect"
                try:
                    member.post("ping")
                except MemberFailure:
                    evicted.append(member.name)
                    continue
                suspects.append(member)
            for member in suspects:
                try:
                    response = member.collect()
                except MemberFailure:
                    evicted.append(member.name)
                    continue
                epoch = response.get("epoch")
                if isinstance(epoch, int) and not isinstance(epoch, bool):
                    member.acked_epoch = epoch
            if evicted:
                self._compact_ledger()
        return evicted

    def start_heartbeat(self) -> None:
        """Start the background prober (no-op without an interval)."""
        if self.heartbeat_interval is None or self._closed or \
                self._heartbeat_thread is not None:
            return
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="community-heartbeat",
            daemon=True)
        self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        # Wake at half the interval so a member idle for exactly one
        # interval is probed within ~1.5 intervals worst case.
        while not self._heartbeat_stop.wait(self.heartbeat_interval / 2.0):
            if self._closed:
                break
            # Never queue behind a busy server: in-flight commands have
            # their own deadlines, and a blocking acquire here would
            # stack stale probes behind a long learn wave.
            if not self._channel_lock.acquire(blocking=False):
                continue
            try:
                self.heartbeat()
            except Exception:  # noqa: BLE001 - prober must never die
                pass
            finally:
                self._channel_lock.release()

    def poll_rejoins(self, budget: float = 0.0) -> list["ChannelMember"]:
        """Admit reconnecting members (socket transport only)."""
        return []

    def _compact_ledger(self) -> None:
        """Forget journal pairs no member could still need replayed.

        The floor is the smallest acknowledged epoch across members
        (fresh members announce epoch 0, which is always
        compaction-safe — see :meth:`PatchLedger.compact`); members
        that never acknowledged an epoch hold no patches and impose no
        floor.
        """
        floor = self.ledger.epoch
        for member in self.members:
            if member.acked_epoch > 0:
                floor = min(floor, member.acked_epoch)
        self.ledger.compact(floor)

    # -- reply multiplexing --------------------------------------------

    def _await_reply(self, member: ChannelMember,
                     timeout: float | None) -> bytes:
        """Block until *member* has a complete reply frame, pumping every
        sibling channel meanwhile.

        This is what makes the scatter/gather genuinely asynchronous:
        while the server absorbs members in deterministic dispatch
        order, the other members' replies keep streaming into their
        channel buffers, so a slow member never blocks reception — and
        the server's correlation/merge work on early repliers overlaps
        the stragglers' still-running shards.

        Deadlines: *timeout* bounds time-to-first-byte of the reply;
        once the frame starts, the channel's frame deadline bounds its
        completion (the wedged-mid-write window).
        """
        channel = member.channel
        start = _monotonic()
        while True:
            # Pump before evaluating any deadline (same invariant as
            # FramedChannel.recv_frame): a reply that fully arrived in
            # the kernel buffer while the server was busy absorbing a
            # sibling must be surfaced, not timed out.
            if not channel.closed:
                channel.pump()
            if channel.has_frame():
                return channel.pop_frame()
            if channel.at_eof or channel.closed:
                raise ChannelClosed(mid_frame=bool(channel._buffer))
            now = _monotonic()
            frame_deadline = channel.partial_frame_deadline()
            if frame_deadline is not None and now >= frame_deadline:
                raise ChannelTimeout(
                    f"reply frame stalled mid-receive (no complete frame "
                    f"within {channel.frame_deadline:.1f}s of its first "
                    f"byte)", mid_frame=True)
            waits = []
            if frame_deadline is not None:
                waits.append(frame_deadline - now)
            elif timeout is not None:
                remaining = timeout - (now - start)
                if remaining <= 0:
                    raise ChannelTimeout(f"no reply within "
                                         f"{max(timeout, 0.0):.1f}s")
                waits.append(remaining)
            # EOF'd channels are permanently select-readable with no
            # progress to make; including one would busy-spin the wait.
            peers = [peer.channel for peer in self.members
                     if peer.alive and peer.channel is not None
                     and not peer.channel.closed
                     and not peer.channel.at_eof
                     and (peer is member or peer.pending_ops)]
            try:
                readable, _, _ = select.select(
                    peers, [], [], max(0.0, min(waits)) if waits else 1.0)
            except (OSError, ValueError):
                # A peer's fd died mid-select; retry against the
                # survivors (the dead peer raises at its own collect).
                readable = [ch for ch in peers
                            if not ch.closed and _can_pump(ch)]
            for ready in readable:
                try:
                    ready.pump()
                except ChannelError:
                    if ready is channel:
                        raise
                    # A sibling's failure surfaces when it is collected.

    # -- pool management -----------------------------------------------

    def spawn(self, binary: Binary, config: EnvironmentConfig | None,
              names: list[str]) -> list[ChannelMember]:
        raise NotImplementedError

    def respawn(self, member: "ChannelMember",
                timeout: float | None = None) -> bool:
        """Relaunch a dropped member's worker process, if the transport
        can (a member lost to a patch-induced crash or hang is not the
        member's fault — toxic-candidate containment revives it).
        Returns True once the member is back in dispatch."""
        return False

    def _catch_up(self, member: "ChannelMember", epoch: int) -> None:
        """Replay the net ledger deltas since *epoch*, then re-admit."""
        ledger = self.ledger
        removes, installs = ledger.deltas_since(epoch)
        # After catch-up the member holds the whole live set; register
        # those holds *before* the command so a drop mid-replay releases
        # exactly them and survivors' refcounts stay intact.
        live = ledger.live_at(ledger.epoch)
        for patch in live:
            ledger.register(patch)
        member._ledger_ids = [patch.patch_id for patch in live]
        member.call("catch-up", **wire.catch_up_to_dict(
            removes, [wire.patch_to_dict(patch) for patch in installs],
            ledger.epoch))
        member.acked_epoch = ledger.epoch
        member.state = "active"

    def close(self) -> None:
        """Shut every worker down; idempotent, leaves no orphans."""
        if self._closed:
            return
        self._closed = True
        self._heartbeat_stop.set()
        thread = self._heartbeat_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._heartbeat_thread = None
        for member in self.members:
            member.shutdown()

    def __enter__(self) -> "ChannelTransport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown safety
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


def _can_pump(channel: FramedChannel) -> bool:
    try:
        channel.fileno()
    except (OSError, ValueError):
        return False
    return True


# ---------------------------------------------------------------------------
# Socket transport (multi-host members, optional TLS)
# ---------------------------------------------------------------------------

def _disable_nagle(sock: socket.socket) -> None:
    """Pipelined commands are many small frames sent back-to-back;
    Nagle would hold each behind the previous unacked segment (~40ms
    with delayed ACKs), erasing the pipelining win over TCP."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - non-TCP sockets
        pass


def _client_tls_context(cafile: str | None) -> "ssl.SSLContext":
    if ssl is None:  # pragma: no cover - stdlib always has ssl here
        raise CommunityError("TLS requested but the ssl module is missing")
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    # The server's (self-signed) certificate is pinned as the trust
    # root; members connect by address, so hostname checks are off.
    context.check_hostname = False
    context.verify_mode = ssl.CERT_REQUIRED
    context.load_verify_locations(cafile=cafile)
    return context


def _server_tls_context(certfile: str, keyfile: str) -> "ssl.SSLContext":
    if ssl is None:  # pragma: no cover
        raise CommunityError("TLS requested but the ssl module is missing")
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(certfile=certfile, keyfile=keyfile)
    return context


def _socket_worker_main(host: str, port: int, name: str, binary: Binary,
                        config: EnvironmentConfig | None,
                        cafile: str | None,
                        frame_deadline: float) -> None:
    """Entry point of a locally spawned socket-transport worker."""
    channel = connect_member(host, port, name, cafile=cafile,
                             frame_deadline=frame_deadline)
    serve_channel(channel, name, binary, config)


def connect_member(host: str, port: int, name: str,
                   cafile: str | None = None,
                   frame_deadline: float = 30.0,
                   connect_timeout: float = 10.0,
                   epoch: int = 0) -> FramedChannel:
    """Dial a listening community server and introduce this member.

    Returns the established (optionally TLS) channel with the
    epoch-stamped hello frame already sent (*epoch* is the member's
    last acknowledged ledger epoch — 0 for a fresh process);
    :func:`run_member` drives the full command loop for externally
    launched members.
    """
    deadline = _monotonic() + connect_timeout
    last_error: Exception | None = None
    sock: socket.socket | None = None
    while _monotonic() < deadline:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            break
        except OSError as error:
            last_error = error
            time.sleep(0.1)
    if sock is None:
        raise CommunityError(
            f"could not reach community server at {host}:{port}: "
            f"{last_error}")
    _disable_nagle(sock)
    if cafile is not None:
        context = _client_tls_context(cafile)
        sock.settimeout(frame_deadline)
        sock = context.wrap_socket(sock)
    channel = FramedChannel(sock, frame_deadline=frame_deadline)
    channel.send_frame(wire.encode(wire.hello_to_dict(name, epoch)),
                       timeout=frame_deadline)
    return channel


def run_member(host: str, port: int, name: str, binary: Binary,
               config: EnvironmentConfig | None = None,
               cafile: str | None = None,
               frame_deadline: float = 30.0,
               connect_timeout: float = 30.0,
               reconnect: int = 0, backoff: float = 0.5,
               backoff_cap: float = 30.0) -> None:
    """Run one community member against a remote manager until it is
    shut down (the ``community --connect`` CLI mode).

    ``reconnect`` is how many times a lost server connection is
    re-dialed, with exponential backoff starting at *backoff* seconds
    and capped at *backoff_cap*.  A reconnect keeps the worker session
    (node state, installed patches, warm caches) and announces the last
    acknowledged ledger epoch in its hello, so the server replays only
    the patch deltas this member actually missed.  A polite shutdown
    from the server always ends the loop.
    """
    state: _WorkerState | None = None
    attempts_left = reconnect
    delay = backoff
    while True:
        try:
            channel = connect_member(
                host, port, name, cafile=cafile,
                frame_deadline=frame_deadline,
                connect_timeout=connect_timeout,
                epoch=0 if state is None else state.patch_epoch)
        except CommunityError:
            if attempts_left <= 0:
                raise
            attempts_left -= 1
            time.sleep(delay)
            delay = min(delay * 2.0, backoff_cap)
            continue
        state, reason = serve_channel(channel, name, binary, config,
                                      state=state)
        if reason == "shutdown" or attempts_left <= 0:
            return
        attempts_left -= 1
        time.sleep(delay)
        delay = min(delay * 2.0, backoff_cap)


class SocketTransport(ChannelTransport):
    """Community members over TCP sockets, optionally TLS-wrapped.

    Two membership modes:

    - default: :meth:`spawn` forks one worker process per member on this
      host; each dials the loopback listener — the same process model as
      :class:`~repro.community.sharding.ProcessTransport` but over the
      multi-host wire protocol.
    - ``accept_external=True``: :meth:`spawn` launches nothing and
      instead waits for externally started members (``python -m repro
      community --connect``) to dial in; their hello names identify
      them.

    TLS models the paper's Node Manager <-> Management Console SSL
    channel: pass ``certfile``/``keyfile`` and every member channel is
    wrapped, with the server certificate pinned as the members' trust
    root.  A member that fails the TLS handshake never joins: it is
    recorded in :attr:`dropped` with reason ``"handshake"`` and the
    community proceeds with the survivors.
    """

    def __init__(self, timeout: float = 60.0, learn_timeout: float = 300.0,
                 run_timeout: float | None = None,
                 frame_deadline: float = 30.0, pipeline_depth: int = 4,
                 heartbeat_interval: float | None = None,
                 ping_timeout: float | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 certfile: str | None = None, keyfile: str | None = None,
                 accept_external: bool = False,
                 spawn_timeout: float = 60.0,
                 start_method: str = "fork",
                 _plaintext_members: frozenset[str] = frozenset()):
        super().__init__(timeout=timeout, learn_timeout=learn_timeout,
                         run_timeout=run_timeout,
                         frame_deadline=frame_deadline,
                         pipeline_depth=pipeline_depth,
                         heartbeat_interval=heartbeat_interval,
                         ping_timeout=ping_timeout)
        self.host = host
        self.port = port
        self.certfile = certfile
        self.keyfile = keyfile
        self.accept_external = accept_external
        self.spawn_timeout = spawn_timeout
        #: Test hook: members listed here connect *without* TLS to a
        #: TLS server, forcing a handshake failure.
        self._plaintext_members = frozenset(_plaintext_members)
        try:
            self._context = multiprocessing.get_context(start_method)
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context()
        self._listener: socket.socket | None = None
        self._server_context = None  # built once, lazily, for TLS
        # Stashed at spawn: what a brand-new member admitted through
        # poll_rejoins is constructed with.
        self._binary: Binary | None = None
        self._config: EnvironmentConfig | None = None
        #: Respawned worker processes awaiting their rejoin handshake,
        #: by member name; adopted by :meth:`poll_rejoins` so the
        #: member owns (and can reap) its fresh process handle.
        self._pending_respawns: dict[str, object] = {}

    def listen(self) -> tuple[str, int]:
        """Bind the member listener; returns the bound (host, port)."""
        if self._listener is None:
            self._listener = socket.create_server((self.host, self.port))
            self._listener.settimeout(0.2)
            self.port = self._listener.getsockname()[1]
        return self.host, self.port

    def _accept_one(self, deadline: float, pool_deadline: float
                    ) -> tuple[str, FramedChannel, dict]:
        """Accept, (optionally) TLS-wrap, and read one member's hello.

        *deadline* bounds the wait for a connection attempt (spawn
        slices it so dead workers get reaped between attempts);
        *pool_deadline* is the full membership budget an accepted
        connection's TLS handshake and hello may use — a slow but
        healthy multi-host dialer must not be cut off by the reaping
        slice.
        """
        assert self._listener is not None
        last_error = "no connection attempt"
        while _monotonic() < deadline:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError as error:  # pragma: no cover - listener died
                raise CommunityError(f"listener failed: {error}") from error
            _disable_nagle(conn)
            try:
                if self.certfile is not None:
                    if self._server_context is None:
                        self._server_context = _server_tls_context(
                            self.certfile, self.keyfile)
                    conn.settimeout(
                        max(0.1, pool_deadline - _monotonic()))
                    conn = self._server_context.wrap_socket(
                        conn, server_side=True)
                channel = FramedChannel(conn,
                                        frame_deadline=self.frame_deadline)
                hello = wire.decode(channel.recv_frame(
                    timeout=max(0.1, pool_deadline - _monotonic())))
                if hello.get("op") != "hello" or \
                        not isinstance(hello.get("name"), str):
                    raise CommunityError(f"bad hello: {hello!r}")
            except (OSError, ChannelError, wire.WireError,
                    CommunityError) as error:
                last_error = f"{type(error).__name__}: {error}"
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            return hello["name"], channel, hello
        raise CommunityError(f"member handshake failed: {last_error}")

    def spawn(self, binary: Binary, config: EnvironmentConfig | None,
              names: list[str]) -> list[ChannelMember]:
        if self.members:
            raise CommunityError("transport already has a worker pool")
        self._binary = binary
        self._config = config
        self.listen()
        # External members rename placeholder slots to their announced
        # hello names; work on a copy so the caller's list is untouched.
        names = list(names)
        processes: dict[str, object] = {}
        if not self.accept_external:
            for name in names:
                cafile = self.certfile
                if name in self._plaintext_members:
                    cafile = None
                process = self._context.Process(
                    target=_socket_worker_main,
                    args=(self.host, self.port, name, binary, config,
                          cafile, self.frame_deadline),
                    name=f"community-{name}", daemon=True)
                process.start()
                processes[name] = process
        deadline = _monotonic() + self.spawn_timeout
        channels: dict[str, FramedChannel] = {}
        expected = set(names)
        failures: dict[str, str] = {}
        while expected - set(channels) and _monotonic() < deadline:
            # Reap spawned workers that died before completing their
            # handshake (failed TLS, crashed on startup): waiting out
            # the full spawn timeout for them would stall the pool.
            for name, process in processes.items():
                if name not in channels and name not in failures and \
                        not process.is_alive():
                    failures[name] = (f"worker exited before handshake "
                                      f"(exit code {process.exitcode})")
            if not self.accept_external and \
                    expected - set(channels) - set(failures) == set():
                break
            try:
                name, channel, hello = self._accept_one(
                    min(deadline, _monotonic() + 1.0), deadline)
            except CommunityError:
                # Keep waiting until the pool deadline; individual
                # handshake failures were recorded by the accept loop.
                if _monotonic() >= deadline:
                    break
                continue
            if self.accept_external and name not in expected:
                # External members name themselves; adopt the hello
                # name in place of the next unclaimed slot.
                unclaimed = [slot for slot in names
                             if slot not in channels
                             and slot not in failures]
                if not unclaimed:
                    channel.close()
                    continue
                placeholder = unclaimed[0]
                names[names.index(placeholder)] = name
                expected.discard(placeholder)
                expected.add(name)
            if name in channels:
                channel.close()
                continue
            channels[name] = channel
            # Log the hello only for adopted connections: a rejected
            # dialer's channel never joins wire_bytes_total, so logging
            # its frame would break the to-the-byte reconciliation.
            self.deliver(Message(
                sender=name, recipient="server", kind="hello",
                payload=hello, frame_size=channel.received_bytes))
        for name in names:
            channel = channels.get(name)
            member = ChannelMember(self, name, binary, channel,
                                   process=processes.get(name))
            self.members.append(member)
            if channel is None:
                detail = failures.get(
                    name, "no connection within the spawn timeout")
                self.dropped.append(DroppedMember(
                    name=name, reason="handshake", op="hello",
                    detail=detail))
                member.state = "dropped"
                member._terminate()
        if not any(member.alive for member in self.members):
            self.close()
            raise CommunityError(
                "no member completed the socket handshake")
        self.start_heartbeat()
        return list(self.members)

    def poll_rejoins(self, budget: float = 0.0) -> list[ChannelMember]:
        """Admit reconnecting or newly arriving members.

        Non-blocking by default (*budget* seconds of accept patience).
        A hello whose name matches a dropped member revives that member
        in place; an unknown name is admitted as a brand-new member
        only in ``accept_external`` mode; a duplicate of a live member
        is refused.  Every admission replays the net patch-ledger
        deltas since the hello's acknowledged epoch before the member
        returns to dispatch (state ``rejoining → active``).  Returns
        the members (re-)admitted by this call.
        """
        if self._listener is None or self._closed:
            return []
        admitted: list[ChannelMember] = []
        deadline = _monotonic() + budget
        with self._channel_lock:
            while True:
                try:
                    readable, _, _ = select.select(
                        [self._listener], [], [],
                        max(0.0, deadline - _monotonic()))
                except (OSError, ValueError):  # pragma: no cover
                    break
                if not readable:
                    break
                try:
                    name, channel, hello = self._accept_one(
                        _monotonic() + 1.0,
                        _monotonic() + max(budget, self.frame_deadline))
                except CommunityError:
                    continue
                try:
                    _name, epoch = wire.hello_from_dict(hello)
                except wire.WireError:
                    channel.close()
                    continue
                member = next((peer for peer in self.members
                               if peer.name == name), None)
                if member is not None and member.alive:
                    channel.close()
                    continue
                if member is None:
                    if not self.accept_external or self._binary is None:
                        channel.close()
                        continue
                    member = ChannelMember(self, name, self._binary, None)
                    self.members.append(member)
                member.adopt_channel(
                    channel, process=self._pending_respawns.pop(name, None))
                self.deliver(Message(
                    sender=name, recipient="server", kind="hello",
                    payload=hello, frame_size=channel.received_bytes))
                try:
                    self._catch_up(member, epoch)
                except MemberFailure:
                    continue
                admitted.append(member)
            if admitted:
                self._compact_ledger()
        return admitted

    def respawn(self, member: ChannelMember,
                timeout: float | None = None) -> bool:
        """Relaunch a dropped loopback worker under its old name.

        Only spawned (loopback) members can be relaunched — externally
        started members own their lifecycle and rejoin on their own via
        :meth:`poll_rejoins`.  The fresh process dials the listener and
        is admitted through the ordinary rejoin path (hello epoch 0,
        full live-set catch-up).
        """
        if self.accept_external or self._binary is None or \
                self._listener is None or self._closed:
            return False
        if member.alive or member not in self.members:
            return member.alive
        cafile = self.certfile
        if member.name in self._plaintext_members:
            cafile = None
        process = self._context.Process(
            target=_socket_worker_main,
            args=(self.host, self.port, member.name, self._binary,
                  self._config, cafile, self.frame_deadline),
            name=f"community-{member.name}", daemon=True)
        process.start()
        self._pending_respawns[member.name] = process
        budget = self.spawn_timeout if timeout is None else timeout
        deadline = _monotonic() + budget
        while not member.alive and _monotonic() < deadline:
            self.poll_rejoins(budget=0.2)
            if not process.is_alive() and not member.alive:
                break
        leftover = self._pending_respawns.pop(member.name, None)
        if leftover is not None and not member.alive:
            # The fresh worker never completed its handshake; reap it.
            try:
                leftover.terminate()
                leftover.join(timeout=5)
            except (OSError, ValueError):  # pragma: no cover - teardown
                pass
        return member.alive

    def close(self) -> None:
        super().close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
