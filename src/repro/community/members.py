"""Member handles: the manager's transport-generic view of one machine.

The :class:`~repro.community.manager.CommunityManager` never talks to a
member's execution environment directly any more — it drives a *handle*
exposing the node-manager command set (learn a shard, run an input,
install or remove a patch, evaluate a candidate repair).  Two handle
families implement it:

- :class:`LocalMember` wraps an in-process
  :class:`~repro.community.node.CommunityNode` and calls it directly —
  the original single-process simulation, byte-for-byte.
- :class:`~repro.community.remote.ChannelMember` proxies the same
  commands over a deadline-framed channel to a worker process — an
  anonymous socketpair (:class:`~repro.community.sharding.ProcessMember`)
  or a TCP/TLS connection
  (:class:`~repro.community.remote.SocketTransport`).

Every command is split into ``start_*`` / ``finish_*`` halves so the
manager can scatter a command to many members before gathering any
result: on the channel transports the workers genuinely overlap (and
each accepts a bounded pipeline of in-flight commands), while a local
member simply executes during ``start_*`` — preserving the exact
sequential semantics the in-process community always had.
"""

from __future__ import annotations

from repro.community.node import CommunityNode, NodeStats
from repro.dynamo.execution import RunResult
from repro.dynamo.patches import Patch
from repro.errors import CommunityError
from repro.learning.database import InvariantDatabase
from repro.vm.binary import Binary


class MemberFailure(CommunityError):
    """A member could not complete a command and has been dropped.

    ``reason`` is one of ``"crash"`` (worker process died or its
    channel closed), ``"hang"`` (no reply within the per-op deadline,
    or a reply frame that failed to complete within the frame
    deadline — the wedged-mid-write case; a worker wedged *between*
    commands is caught the same way by the heartbeat prober's ping
    deadline), ``"malformed"`` (reply was not decodable protocol),
    ``"handshake"`` (a socket member never established its — possibly
    TLS — channel), or ``"error"`` (worker reported a command
    failure).  A dropped socket member is not necessarily gone for
    good: it may reconnect and be re-admitted through the transport's
    rejoin path (``SocketTransport.poll_rejoins``).
    """

    def __init__(self, member: str, reason: str, detail: str = ""):
        self.member = member
        self.reason = reason
        self.detail = detail
        message = f"member {member} dropped ({reason})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


def patch_summary(patch: Patch) -> dict:
    """Transport-independent description of one applied patch.

    Both handle families report applied patches in this shape, so the
    differential suite can assert the sharded community distributed
    exactly the patch set the in-process one did.
    """
    return {
        "type": type(patch).__name__,
        "pc": patch.pc,
        "when": patch.when,
        "failure_id": patch.failure_id,
        "description": patch.description,
    }


class LocalMember:
    """Handle over an in-process :class:`CommunityNode`."""

    def __init__(self, node: CommunityNode):
        self.node = node
        self.alive = True
        #: Lifecycle parity with ChannelMember: an in-process member is
        #: born active and can neither wedge nor rejoin.
        self.state = "active"
        self._learned: tuple[InvariantDatabase, int] | None = None
        self._evaluated: RunResult | None = None
        self._probed: RunResult | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def binary(self) -> Binary:
        return self.node.binary

    # -- learning ------------------------------------------------------

    def start_learn_shard(self, pages: list[bytes],
                          procedures: set[int] | None,
                          pair_scope: str) -> None:
        self._learned = self.node.learn_shard(pages, procedures,
                                              pair_scope)

    def finish_learn_shard(self) -> tuple[InvariantDatabase, int]:
        assert self._learned is not None, "no learn shard in flight"
        learned, self._learned = self._learned, None
        return learned

    # -- running -------------------------------------------------------

    def run(self, payload: bytes) -> RunResult:
        """One protected run; failures are reported to the server."""
        return self.node.run(payload)

    def probe(self, payload: bytes) -> RunResult:
        """One run *without* failure reporting (immunity sweeps)."""
        return self.node.environment.run(payload)

    def start_probe(self, payload: bytes) -> None:
        self._probed = self.probe(payload)

    def finish_probe(self) -> RunResult:
        assert self._probed is not None, "no probe in flight"
        result, self._probed = self._probed, None
        return result

    # -- patch management ----------------------------------------------

    def install_patch(self, patch: Patch) -> None:
        self.node.apply_patch(patch)

    def remove_patch(self, patch: Patch) -> None:
        self.node.remove_patch(patch)

    def revoke_patch(self, patch: Patch) -> bool:
        """Idempotent removal for revocation waves; returns whether the
        member actually held the patch."""
        if patch not in self.node.environment.patches:
            return False
        self.node.remove_patch(patch)
        return True

    def applied_patches(self) -> list[dict]:
        return [patch_summary(patch)
                for patch in self.node.environment.patches]

    # -- repair evaluation ---------------------------------------------

    def start_evaluate_candidate(self, patches: list[Patch],
                                 payload: bytes) -> None:
        self._evaluated = self.node.evaluate_candidate(patches, payload)

    def finish_evaluate_candidate(self) -> RunResult:
        assert self._evaluated is not None, "no evaluation in flight"
        result, self._evaluated = self._evaluated, None
        return result

    # -- bookkeeping ---------------------------------------------------

    def stats(self) -> NodeStats:
        return self.node.stats

    def shutdown(self) -> None:
        """Nothing to tear down for an in-process member."""
