"""Application communities: distributed learning and patch distribution."""

from repro.community.manager import (
    CommunityEnvironment,
    CommunityManager,
    DistributedLearningReport,
)
from repro.community.node import CommunityNode, NodeStats
from repro.community.strategies import (
    overlapping_assignments,
    partition_random,
    partition_round_robin,
)
from repro.community.transport import Message, MessageBus

__all__ = [
    "CommunityEnvironment", "CommunityManager",
    "DistributedLearningReport", "CommunityNode", "NodeStats",
    "overlapping_assignments", "partition_random",
    "partition_round_robin", "Message", "MessageBus",
]
