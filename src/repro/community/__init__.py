"""Application communities: distributed learning and patch distribution."""

from repro.community.manager import (
    CommunityEnvironment,
    CommunityManager,
    DistributedLearningReport,
)
from repro.community.members import LocalMember, MemberFailure
from repro.community.node import CommunityNode, NodeStats
from repro.community.remote import (
    ChannelMember,
    ChannelTransport,
    DroppedMember,
    FramedChannel,
    PatchLedger,
    SocketTransport,
    connect_member,
    run_member,
)
from repro.community.sharding import ProcessMember, ProcessTransport
from repro.community.strategies import (
    overlapping_assignments,
    partition_random,
    partition_round_robin,
)
from repro.community.transport import Message, MessageBus

__all__ = [
    "CommunityEnvironment", "CommunityManager",
    "DistributedLearningReport", "CommunityNode", "NodeStats",
    "LocalMember", "MemberFailure", "DroppedMember", "ChannelMember",
    "ChannelTransport", "FramedChannel", "PatchLedger", "ProcessMember",
    "ProcessTransport", "SocketTransport", "connect_member", "run_member",
    "overlapping_assignments", "partition_random",
    "partition_round_robin", "Message", "MessageBus",
]
