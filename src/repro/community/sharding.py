"""Process-sharded community members (§3 at real process granularity).

The in-process :class:`~repro.community.transport.MessageBus` simulates
every member inside the server's interpreter, so an 8-member community
never uses more than one core and "serialization" is a dictionary copy.
This module makes the management-console/node split real:

- :class:`ProcessTransport` owns one OS process per member (the paper's
  Determina Node Manager), each running the shared
  :func:`~repro.community.remote.serve_channel` command loop over an
  anonymous socketpair carried by a deadline-framed
  :class:`~repro.community.remote.FramedChannel`.
- :class:`ProcessMember` is the server-side proxy implementing the same
  handle API as :class:`~repro.community.members.LocalMember`; commands
  and replies cross the channel as length-prefixed canonical JSON
  (:mod:`repro.community.wire`) and are logged on the transport with
  their true on-wire frame size.
- :class:`~repro.community.remote.PatchLedger` folds worker-reported
  state back into the *canonical* server-side patch objects: check-patch
  observations stream into the ClearView manager's sink, and repair
  ``fired`` deltas accumulate on the very objects the manager consults
  for causal crash blame — which is what makes the sharded community
  observationally identical to the in-process one.

Failure policy: a worker that crashes (channel EOF), hangs (no reply
within the per-op deadline, *or* a reply frame that stops making
progress within the frame deadline — a worker wedged mid-write, e.g.
SIGSTOPped after a partial reply, is detected and dropped, not waited on
forever), or replies with undecodable protocol is terminated (SIGKILL
escalation included, since a stopped process shrugs off SIGTERM),
recorded in :attr:`ProcessTransport.dropped`, and excluded from further
dispatch; the manager re-shards its outstanding work across the
survivors.  Workers are daemonic and :meth:`ProcessTransport.close` is
idempotent, so no code path leaves orphan processes behind.
"""

from __future__ import annotations

import multiprocessing
import socket

from repro.community.remote import (  # noqa: F401 - re-exported compat
    ChannelMember,
    ChannelTransport,
    DroppedMember,
    FramedChannel,
    PatchLedger,
    serve_channel,
)
from repro.dynamo.execution import EnvironmentConfig
from repro.errors import CommunityError
from repro.vm.binary import Binary


def _worker_main(sock: socket.socket, frame_deadline: float, name: str,
                 binary: Binary, config: EnvironmentConfig | None) -> None:
    """Entry point of one pipe-transport worker process."""
    serve_channel(FramedChannel(sock, frame_deadline=frame_deadline),
                  name, binary, config)


class ProcessMember(ChannelMember):
    """Server-side proxy for one same-host worker process."""


class ProcessTransport(ChannelTransport):
    """One worker process per member over anonymous socketpairs.

    The same deadline-framed channel protocol as
    :class:`~repro.community.remote.SocketTransport`, minus TCP and TLS:
    each worker inherits its end of a :func:`socket.socketpair` at fork.
    """

    def __init__(self, timeout: float = 60.0, learn_timeout: float = 300.0,
                 run_timeout: float | None = None,
                 frame_deadline: float = 30.0, pipeline_depth: int = 4,
                 heartbeat_interval: float | None = None,
                 ping_timeout: float | None = None,
                 start_method: str = "fork"):
        super().__init__(timeout=timeout, learn_timeout=learn_timeout,
                         run_timeout=run_timeout,
                         frame_deadline=frame_deadline,
                         pipeline_depth=pipeline_depth,
                         heartbeat_interval=heartbeat_interval,
                         ping_timeout=ping_timeout)
        try:
            self._context = multiprocessing.get_context(start_method)
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context()
        # Stashed at spawn so a member lost to a patch-induced fault
        # can be relaunched under its old name (see :meth:`respawn`).
        self._binary: Binary | None = None
        self._config: EnvironmentConfig | None = None

    def _launch(self, name: str) -> tuple[FramedChannel, object]:
        server_sock, worker_sock = socket.socketpair()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_sock, self.frame_deadline, name, self._binary,
                  self._config),
            name=f"community-{name}", daemon=True)
        process.start()
        worker_sock.close()
        channel = FramedChannel(server_sock,
                                frame_deadline=self.frame_deadline)
        return channel, process

    def spawn(self, binary: Binary, config: EnvironmentConfig | None,
              names: list[str]) -> list[ProcessMember]:
        if self.members:
            raise CommunityError("transport already has a worker pool")
        self._binary = binary
        self._config = config
        for name in names:
            channel, process = self._launch(name)
            self.members.append(ProcessMember(
                self, name, binary, channel, process=process))
        self.start_heartbeat()
        return list(self.members)

    def respawn(self, member: ChannelMember,
                timeout: float | None = None) -> bool:
        """Relaunch a dropped member as a fresh worker process.

        The new process starts with nothing installed (hello epoch 0
        semantics); the full live patch set is replayed through the
        ledger catch-up before the member returns to dispatch.
        """
        if self._binary is None or self._closed or \
                member not in self.members:
            return False
        if member.alive:
            return True
        channel, process = self._launch(member.name)
        member.adopt_channel(channel, process=process)
        try:
            self._catch_up(member, 0)
        except CommunityError:
            return False
        self._compact_ledger()
        return True
