"""Process-sharded community members (§3 at real process granularity).

The in-process :class:`~repro.community.transport.MessageBus` simulates
every member inside the server's interpreter, so an 8-member community
never uses more than one core and "serialization" is a dictionary copy.
This module makes the management-console/node split real:

- :class:`ProcessTransport` owns one OS process per member (the paper's
  Determina Node Manager), each running :func:`_worker_main`'s command
  loop over a pipe.
- :class:`ProcessMember` is the server-side proxy implementing the same
  handle API as :class:`~repro.community.members.LocalMember`; commands
  and replies cross the pipe as canonical JSON
  (:mod:`repro.community.wire`) and are logged on the transport with
  their true encoded size.
- :class:`PatchLedger` folds worker-reported state back into the
  *canonical* server-side patch objects: check-patch observations stream
  into the ClearView manager's sink, and repair ``fired`` deltas
  accumulate on the very objects the manager consults for causal crash
  blame — which is what makes the sharded community observationally
  identical to the in-process one.

Failure policy: a worker that crashes (pipe EOF), hangs (no reply within
the transport timeout), or replies with undecodable protocol is
terminated, recorded in :attr:`ProcessTransport.dropped`, and excluded
from further dispatch; the manager re-shards its outstanding work across
the survivors.  Workers are daemonic and :meth:`ProcessTransport.close`
is idempotent, so no code path leaves orphan processes behind.

Known limitation: the hang timeout bounds time-to-first-byte
(``poll``), not time-to-complete-message — a worker wedged *mid-write*
(e.g. SIGSTOPped after a partial reply) would still stall the blocking
``recv_bytes``.  Guarding that needs a reader thread or async pipes;
tracked as the async-transport follow-up in the ROADMAP.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import typing
from dataclasses import dataclass, field

from repro.community import wire
from repro.community.members import MemberFailure, patch_summary
from repro.community.transport import Message, MessageBus
from repro.core.checks import CheckPatch, Observation
from repro.dynamo.execution import EnvironmentConfig, RunResult
from repro.dynamo.patches import Patch
from repro.errors import CommunityError
from repro.vm.binary import Binary

if typing.TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

#: Exit code a worker uses for an injected crash (distinguishable from
#: interpreter faults in test diagnostics).
_INJECTED_CRASH_EXIT = 37


class PatchLedger:
    """Canonical-object registry for patches distributed to workers.

    Workers execute *copies* of every patch; the ledger maps a patch id
    back to the server's original so that observation events and fired
    counters land where the ClearView core reads them.

    Entries are *refcounted* per patch id: a patch fanned out to N
    members registers N times, and the canonical object stays resolvable
    while any member still holds it — removing it from one member (or
    dropping that member) must not orphan the others' observation
    events.  The entry is freed when the last holder lets go, so the
    ledger stays bounded across arbitrarily many patch episodes.
    """

    def __init__(self):
        self._by_id: dict[int, Patch] = {}
        self._refs: dict[int, int] = {}

    def register(self, patch: Patch) -> None:
        patch_id = patch.patch_id
        self._by_id[patch_id] = patch
        self._refs[patch_id] = self._refs.get(patch_id, 0) + 1

    def unregister(self, patch: Patch) -> None:
        self.release(patch.patch_id)

    def release(self, patch_id: int) -> None:
        """Drop one holder's reference; free the entry at zero."""
        refs = self._refs.get(patch_id)
        if refs is None:
            return
        if refs > 1:
            self._refs[patch_id] = refs - 1
        else:
            del self._refs[patch_id]
            self._by_id.pop(patch_id, None)

    def live_entries(self) -> int:
        """How many canonical patches the ledger currently retains."""
        return len(self._by_id)

    def fold_observation(self, patch_id: int, satisfied: bool) -> None:
        patch = self._by_id.get(patch_id)
        if isinstance(patch, CheckPatch) and patch.sink is not None:
            patch.sink.record(Observation(
                failure_id=patch.failure_id, invariant=patch.invariant,
                satisfied=satisfied))

    def fold_fired(self, patch_id: int, delta: int) -> None:
        patch = self._by_id.get(patch_id)
        if patch is not None and hasattr(patch, "fired"):
            patch.fired += delta


@dataclass
class DroppedMember:
    """One member the transport gave up on."""

    name: str
    reason: str
    op: str
    detail: str = ""


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _ObservationTap:
    """Worker-local stand-in for the server's ObservationSink.

    Streams ``[patch_id, satisfied]`` events, in execution order, into
    the shared per-command event list the reply carries back.
    """

    def __init__(self, events: list, patch_id: int):
        self._events = events
        self._patch_id = patch_id

    def record(self, observation: Observation) -> None:
        self._events.append([self._patch_id, bool(observation.satisfied)])


class _WorkerState:
    """Everything a worker tracks beside its CommunityNode."""

    def __init__(self):
        #: Live patches by id (install-patch .. remove-patch window).
        self.installed: dict[int, Patch] = {}
        #: This command's trial patches (already withdrawn from the
        #: node), still owed a fired-delta report in the postlude.
        self.trial_patches: list[Patch] = []
        self.reported_fired: dict[int, int] = {}
        #: Capture registry for *installed* patches; trial patches use
        #: an ephemeral registry per command, so repair waves that mint
        #: fresh capture ids every round cannot grow this.
        self.captures: dict[str, object] = {}
        #: Per-capture-id refcounts over ``captures``: a capture/check
        #: pair installed as two commands shares one cell while either
        #: is live; removing the last holder frees the cell, so worker
        #: registries stay bounded across many patch episodes.
        self.capture_refs: dict[str, int] = {}
        self.events: list = []
        self.fault: dict | None = None
        self.last_database: dict | None = None
        self.bus_cursor = 0

    def retain_capture(self, patch: Patch) -> None:
        """Count an installed patch's hold on its capture cell."""
        capture = getattr(patch, "capture", None)
        if capture is not None:
            capture_id = capture.capture_id
            self.capture_refs[capture_id] = \
                self.capture_refs.get(capture_id, 0) + 1

    def release_capture(self, patch: Patch) -> None:
        """Drop a removed patch's hold; free the cell at zero."""
        capture = getattr(patch, "capture", None)
        if capture is None:
            return
        capture_id = capture.capture_id
        refs = self.capture_refs.get(capture_id)
        if refs is None:
            return
        if refs > 1:
            self.capture_refs[capture_id] = refs - 1
        else:
            del self.capture_refs[capture_id]
            self.captures.pop(capture_id, None)


def _decode_patch(state: _WorkerState, payload: dict,
                  captures: dict | None = None) -> Patch:
    patch = wire.patch_from_dict(
        payload, state.captures if captures is None else captures,
        sink=_ObservationTap(state.events, payload["patch_id"]))
    # A re-decoded patch id (remove + reinstall of the same server-side
    # patch) starts from fired=0 again; reset its reporting watermark or
    # the next postlude would fold a spurious negative delta into the
    # canonical counter.
    state.reported_fired[patch.patch_id] = 0
    return patch


def _worker_main(conn: "Connection", name: str, binary: Binary,
                 config: EnvironmentConfig | None) -> None:
    """The command loop of one community member process."""
    # Import here: under the fork start method the child inherits the
    # parent's modules anyway, but a spawn fallback must import fresh.
    from repro.community.node import CommunityNode

    bus = MessageBus()
    node = CommunityNode(name, binary, bus, config)
    state = _WorkerState()

    def handle(request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "learn-shard":
            procedures = request["procedures"]
            database, observations = node.learn_shard(
                [bytes.fromhex(page) for page in request["pages"]],
                None if procedures is None else set(procedures),
                request["pair_scope"])
            state.last_database = database.to_dict()
            return {"ok": True, "observations": observations}
        if op == "run":
            result = node.run(bytes.fromhex(request["payload"]))
            return {"ok": True, "result": wire.run_result_to_dict(result)}
        if op == "probe":
            result = node.environment.run(bytes.fromhex(request["payload"]))
            return {"ok": True, "result": wire.run_result_to_dict(result)}
        if op == "install-patch":
            patch = _decode_patch(state, request["patch"])
            node.apply_patch(patch)
            state.installed[patch.patch_id] = patch
            state.retain_capture(patch)
            return {"ok": True}
        if op == "remove-patch":
            patch = state.installed.pop(request["patch_id"], None)
            if patch is None:
                return {"ok": False,
                        "error": f"patch {request['patch_id']} not applied"}
            node.remove_patch(patch)
            # No delta can be pending: fired only moves during run-style
            # commands, whose own replies already drained it.
            state.reported_fired.pop(patch.patch_id, None)
            state.release_capture(patch)
            return {"ok": True}
        if op == "evaluate-candidate":
            trial_captures: dict[str, object] = {}
            patches = [_decode_patch(state, payload, trial_captures)
                       for payload in request["patches"]]
            state.trial_patches = patches
            result = node.evaluate_candidate(
                patches, bytes.fromhex(request["payload"]))
            return {"ok": True, "result": wire.run_result_to_dict(result)}
        if op == "applied-patches":
            return {"ok": True,
                    "patches": [patch_summary(patch)
                                for patch in node.environment.patches]}
        if op == "report-database":
            return {"ok": True, "database": state.last_database}
        if op == "stats":
            stats = node.stats
            return {"ok": True, "stats": {
                "runs": stats.runs,
                "traced_observations": stats.traced_observations,
                "failures_reported": stats.failures_reported,
                "patches_applied": stats.patches_applied,
            }}
        if op == "debug-state":
            # Test/console introspection: the registry footprint the
            # refcounting satellites bound.
            return {"ok": True,
                    "capture_cells": sorted(state.captures),
                    "capture_refs": {key: value for key, value
                                     in sorted(state.capture_refs.items())},
                    "installed_patches": sorted(state.installed)}
        if op == "inject-fault":
            state.fault = {"mode": request["mode"],
                           "op": request.get("at", "*"),
                           "seconds": request.get("seconds", 3600)}
            return {"ok": True}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            request = wire.decode(raw)
            op = request.get("op", "?")
        except wire.WireError:
            request, op = {"op": "?"}, "?"

        fault = state.fault
        if fault is not None and fault["op"] in ("*", op):
            state.fault = None
            if fault["mode"] == "crash":
                os._exit(_INJECTED_CRASH_EXIT)
            if fault["mode"] == "hang":
                time.sleep(fault["seconds"])
                continue  # never answers; the server times out first
            if fault["mode"] == "garbage":
                conn.send_bytes(b"\xffnot json\x00")
                continue
            if fault["mode"] == "hollow":
                # Decodable JSON, protocol-shaped, missing every field
                # the command's reply must carry.
                conn.send_bytes(wire.encode({"ok": True}))
                continue

        try:
            response = handle(request)
        except Exception as error:  # noqa: BLE001 - reported to the server
            response = {"ok": False,
                        "error": f"{type(error).__name__}: {error}"}

        # Postlude: attach everything the server must fold back.
        new_messages = bus.log[state.bus_cursor:]
        state.bus_cursor = len(bus.log)
        response["bus"] = [{"sender": m.sender, "recipient": m.recipient,
                            "kind": m.kind, "payload": m.payload}
                           for m in new_messages]
        fired: dict[str, int] = {}
        for patch in list(state.installed.values()) + state.trial_patches:
            current = getattr(patch, "fired", 0)
            delta = current - state.reported_fired.get(patch.patch_id, 0)
            if delta:
                fired[str(patch.patch_id)] = delta
                state.reported_fired[patch.patch_id] = current
        for patch in state.trial_patches:
            # Trial patches are done after this report; drop their
            # watermarks so worker state stays bounded over long lives.
            state.reported_fired.pop(patch.patch_id, None)
        state.trial_patches = []
        response["fired"] = fired
        # Drain in place: installed taps hold a reference to this list.
        response["events"] = list(state.events)
        state.events.clear()
        try:
            conn.send_bytes(wire.encode(response))
        except (BrokenPipeError, OSError):
            break
        if response.get("bye"):
            break
    conn.close()


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------

class ProcessMember:
    """Server-side proxy for one worker process (node-manager channel)."""

    def __init__(self, transport: "ProcessTransport", name: str,
                 binary: Binary, process, conn: "Connection"):
        self._transport = transport
        self.name = name
        self.binary = binary
        self.process = process
        self.conn = conn
        self.alive = True
        self._pending: str | None = None
        self._trial_patches: list[Patch] = []
        #: Patch ids this member's installs registered on the ledger;
        #: dropping the member releases them, so a casualty holding
        #: patches cannot pin ledger entries forever.
        self._ledger_ids: list[int] = []

    # -- low-level protocol --------------------------------------------

    def post(self, op: str, **payload) -> None:
        """Send one command without waiting for the reply."""
        if not self.alive:
            raise MemberFailure(self.name, "crash", "member already dropped")
        assert self._pending is None, \
            f"member {self.name} already has {self._pending!r} in flight"
        request = {"op": op, **payload}
        encoded = wire.encode(request)
        try:
            self.conn.send_bytes(encoded)
        except (BrokenPipeError, OSError) as error:
            self._fail("crash", op, str(error), cause=error)
        # Log only after a successful write, with the pipe's exact byte
        # count; the request dict is owned by this call, so no defensive
        # copy is needed.
        self._transport.deliver(Message(
            sender="server", recipient=self.name, kind=f"cmd:{op}",
            payload=request, encoded_size=len(encoded)))
        self._pending = op

    def collect(self) -> dict:
        """Wait for the pending command's reply; fold its side effects."""
        assert self._pending is not None, "no command in flight"
        op, self._pending = self._pending, None
        timeout = self._transport.timeout_for(op)
        try:
            ready = self.conn.poll(timeout)
        except (OSError, EOFError):
            ready = False
        if not ready:
            if not self.process.is_alive():
                self._fail("crash", op, "worker process died")
            self._fail("hang", op, f"no reply within {timeout:.1f}s")
        try:
            raw = self.conn.recv_bytes()
        except (EOFError, OSError) as error:
            self._fail("crash", op, str(error), cause=error)
        try:
            response = wire.decode(raw)
        except wire.WireError as error:
            self._fail("malformed", op, str(error), cause=error)
        # Replay member-originated messages (failure notifications,
        # invariant uploads) onto the server transport, then fold
        # observation/fired state into the canonical patches.  Any
        # structural surprise in a decoded reply is a malformed member,
        # same as undecodable bytes.
        try:
            # Every genuine worker reply carries the postlude fields;
            # their absence means the reply did not come from the
            # command loop and the member's state cannot be trusted.
            # Member-originated messages ride piggyback on the reply;
            # pop them so each byte is accounted exactly once — under
            # its own kind for the replayed messages, under reply:<op>
            # for the rest of the reply.
            for entry in response.pop("bus"):
                # Freshly decoded off the pipe: already an independent
                # copy, deliver without re-serializing.
                self._transport.deliver(Message(
                    sender=entry["sender"], recipient=entry["recipient"],
                    kind=entry["kind"], payload=entry["payload"]))
            ledger = self._transport.ledger
            for event in response["events"]:
                ledger.fold_observation(int(event[0]), bool(event[1]))
            for patch_id, delta in response["fired"].items():
                ledger.fold_fired(int(patch_id), int(delta))
        except (TypeError, KeyError, ValueError, IndexError,
                AttributeError) as error:
            self._fail("malformed", op, str(error), cause=error)
        self._transport.deliver(Message(
            sender=self.name, recipient="server", kind=f"reply:{op}",
            payload=response))
        if response.get("ok") is not True:
            self._fail("error", op, str(response.get("error",
                                                     "unspecified")))
        return response

    def _expect(self, op: str, extract):
        """Pull fields out of a reply; a reply missing what the protocol
        promises drops the member as malformed."""
        try:
            return extract()
        except (KeyError, TypeError, ValueError, IndexError,
                wire.WireError) as error:
            self._fail("malformed", op, str(error), cause=error)

    def call(self, op: str, **payload) -> dict:
        self.post(op, **payload)
        return self.collect()

    def _drop(self, reason: str, op: str, detail: str) -> None:
        self.alive = False
        self._pending = None
        # Release this casualty's holds on the canonical patch ledger;
        # survivors holding the same patches keep the entries live.
        ledger = self._transport.ledger
        for patch_id in self._ledger_ids:
            ledger.release(patch_id)
        self._ledger_ids = []
        self._transport.dropped.append(
            DroppedMember(name=self.name, reason=reason, op=op,
                          detail=detail))
        self._terminate()

    def _fail(self, reason: str, op: str, detail: str,
              cause: BaseException | None = None) -> typing.NoReturn:
        """Drop this member and raise the matching MemberFailure — one
        place, so the recorded drop and the raised exception can never
        diverge."""
        self._drop(reason, op, detail)
        raise MemberFailure(self.name, reason, detail) from cause

    def _terminate(self) -> None:
        try:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5)
        except (OSError, ValueError):  # pragma: no cover - teardown races
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- member handle API ---------------------------------------------

    def start_learn_shard(self, pages: list[bytes],
                          procedures: set[int] | None,
                          pair_scope: str) -> None:
        self.post("learn-shard",
                  procedures=(None if procedures is None
                              else sorted(procedures)),
                  pair_scope=pair_scope,
                  pages=[page.hex() for page in pages])

    def finish_learn_shard(self):
        from repro.learning.database import InvariantDatabase

        mark = len(self._transport.log)
        response = self.collect()
        upload = None
        for message in self._transport.log[mark:]:
            if message.kind == "invariant-upload" and \
                    message.sender == self.name:
                upload = message.payload
        if upload is None:
            self._fail("malformed", "learn-shard",
                       "no invariant upload in reply")
        return self._expect("learn-shard", lambda: (
            InvariantDatabase.from_dict(upload),
            int(response["observations"])))

    def run(self, payload: bytes) -> RunResult:
        response = self.call("run", payload=payload.hex())
        return self._expect("run", lambda:
                            wire.run_result_from_dict(response["result"]))

    def probe(self, payload: bytes) -> RunResult:
        response = self.call("probe", payload=payload.hex())
        return self._expect("probe", lambda:
                            wire.run_result_from_dict(response["result"]))

    def install_patch(self, patch: Patch) -> None:
        self._transport.ledger.register(patch)
        self._ledger_ids.append(patch.patch_id)
        self.call("install-patch", patch=wire.patch_to_dict(patch))

    def remove_patch(self, patch: Patch) -> None:
        self.call("remove-patch", patch_id=patch.patch_id)
        if patch.patch_id in self._ledger_ids:
            self._ledger_ids.remove(patch.patch_id)
        self._transport.ledger.unregister(patch)

    def applied_patches(self) -> list[dict]:
        response = self.call("applied-patches")
        return self._expect("applied-patches",
                            lambda: list(response["patches"]))

    def start_evaluate_candidate(self, patches: list[Patch],
                                 payload: bytes) -> None:
        for patch in patches:
            self._transport.ledger.register(patch)
        self._trial_patches = list(patches)
        try:
            self.post("evaluate-candidate",
                      patches=[wire.patch_to_dict(patch)
                               for patch in patches],
                      payload=payload.hex())
        except MemberFailure:
            for patch in self._trial_patches:
                self._transport.ledger.unregister(patch)
            self._trial_patches = []
            raise

    def finish_evaluate_candidate(self) -> RunResult:
        try:
            response = self.collect()
        finally:
            for patch in self._trial_patches:
                self._transport.ledger.unregister(patch)
            self._trial_patches = []
        return self._expect("evaluate-candidate", lambda:
                            wire.run_result_from_dict(response["result"]))

    def stats(self):
        from repro.community.node import NodeStats

        response = self.call("stats")
        return self._expect("stats",
                            lambda: NodeStats(**response["stats"]))

    def report_database(self):
        """Console query: the member's most recently learned shard
        database (None if it has not learned yet)."""
        from repro.learning.database import InvariantDatabase

        response = self.call("report-database")
        return self._expect("report-database", lambda: (
            None if response["database"] is None
            else InvariantDatabase.from_dict(response["database"])))

    def inject_fault(self, mode: str, at: str = "*",
                     seconds: float = 3600.0) -> None:
        """Test hook: arm a one-shot fault in the worker, triggered by
        the next command whose op matches *at*.  Modes: ``crash`` (the
        process dies), ``hang`` (sleeps past the timeout), ``garbage``
        (undecodable reply bytes), ``hollow`` (decodable reply missing
        the protocol's fields)."""
        self.call("inject-fault", mode=mode, at=at, seconds=seconds)

    def shutdown(self) -> None:
        # Only attempt the polite protocol when the channel is idle; a
        # member mid-command (e.g. teardown after an aborted scatter) is
        # simply terminated.
        if self.alive and self._pending is None:
            try:
                self.call("shutdown")
            except MemberFailure:
                pass
        self.alive = False
        self._terminate()


class ProcessTransport:
    """One worker process per member, with bus-compatible accounting.

    Exposes the same ``subscribe``/``send``/``log``/``bytes_by_kind``
    API as :class:`MessageBus` (every command, reply, and replayed member
    message is logged with its true encoded size), plus the worker pool
    management the sharded community needs.
    """

    def __init__(self, timeout: float = 60.0, learn_timeout: float = 300.0,
                 start_method: str = "fork"):
        self.timeout = timeout
        self.learn_timeout = learn_timeout
        try:
            self._context = multiprocessing.get_context(start_method)
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context()
        self._bus = MessageBus()
        self.ledger = PatchLedger()
        self.members: list[ProcessMember] = []
        self.dropped: list[DroppedMember] = []
        self._closed = False

    # -- bus-compatible accounting -------------------------------------

    @property
    def log(self) -> list[Message]:
        return self._bus.log

    def subscribe(self, name: str, handler) -> None:
        self._bus.subscribe(name, handler)

    def send(self, sender: str, recipient: str, kind: str,
             payload: dict) -> Message:
        return self._bus.send(sender, recipient, kind, payload)

    def deliver(self, message: Message) -> Message:
        return self._bus.deliver(message)

    def bytes_by_kind(self) -> dict[str, int]:
        return self._bus.bytes_by_kind()

    def count_by_kind(self) -> dict[str, int]:
        return self._bus.count_by_kind()

    def timeout_for(self, op: str) -> float:
        return self.learn_timeout if op.startswith("learn") else self.timeout

    # -- pool management -----------------------------------------------

    def spawn(self, binary: Binary, config: EnvironmentConfig | None,
              names: list[str]) -> list[ProcessMember]:
        if self.members:
            raise CommunityError("transport already has a worker pool")
        for name in names:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main, args=(child_conn, name, binary, config),
                name=f"community-{name}", daemon=True)
            process.start()
            child_conn.close()
            self.members.append(ProcessMember(self, name, binary, process,
                                              parent_conn))
        return list(self.members)

    def close(self) -> None:
        """Shut every worker down; idempotent, leaves no orphans."""
        if self._closed:
            return
        self._closed = True
        for member in self.members:
            member.shutdown()

    def __enter__(self) -> "ProcessTransport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter teardown safety
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
