"""Control flow graphs, dominators, and dynamic procedure discovery."""

from repro.cfg.discovery import (
    DiscoveryPlugin,
    ProcedureDatabase,
    discover_all_reachable,
)
from repro.cfg.dominators import compute_dominators, strict_dominators
from repro.cfg.graph import ProcedureCFG

__all__ = [
    "DiscoveryPlugin", "ProcedureDatabase", "discover_all_reachable",
    "compute_dominators", "strict_dominators", "ProcedureCFG",
]
