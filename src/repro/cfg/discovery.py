"""Dynamic procedure discovery (§2.2.3).

The paper's combined static/dynamic analysis: there is no reliable way to
find procedure entry points statically in a stripped binary, so ClearView
considers each basic block the first time it *executes*.  If the block is
not already part of a known control flow graph, it is assumed to be the
entry point of a new procedure, and symbolic execution traces out the
procedure's blocks from there: following direct jumps and branches, falling
through calls, and stopping at returns and unresolvable indirect jumps.

This may split one static procedure into several dynamically discovered
ones (procedure fission); the paper reports this is rare and benign, and
our reproduction inherits the same property.
"""

from __future__ import annotations

from repro.cfg.graph import ProcedureCFG
from repro.dynamo.blocks import BlockMap, decode_block
from repro.dynamo.code_cache import CachePlugin, CodeCache
from repro.dynamo.blocks import BasicBlock
from repro.vm.binary import Binary
from repro.vm.isa import Opcode


class ProcedureDatabase:
    """All control flow graphs discovered so far, keyed by entry address."""

    def __init__(self, binary: Binary):
        self.binary = binary
        self.procedures: dict[int, ProcedureCFG] = {}
        self._instruction_to_procedure: dict[int, int] = {}
        self.fission_events = 0
        #: Bumped on every discovery. pc -> procedure attributions are
        #: append-only (an attributed pc never changes owner), so caches
        #: keyed on them stay valid while the version holds; the trace
        #: front end and the CPU's observation filter revalidate on it.
        self.version = 0

    # -- queries -----------------------------------------------------------

    def procedure_of(self, pc: int) -> ProcedureCFG | None:
        """The procedure whose CFG contains instruction *pc*, if any."""
        entry = self._instruction_to_procedure.get(pc)
        if entry is None:
            return None
        return self.procedures.get(entry)

    def known_block(self, start: int) -> bool:
        """True if a known CFG already contains the block at *start*."""
        return start in self._instruction_to_procedure

    def entries(self) -> list[int]:
        return sorted(self.procedures)

    # -- discovery ------------------------------------------------------------

    def observe_block_execution(self, start: int) -> ProcedureCFG | None:
        """React to the first execution of the block at *start*.

        If no known CFG contains it, assume it begins a new procedure and
        symbolically trace that procedure's CFG.  Returns the new CFG, or
        None if the block was already covered.
        """
        if self.known_block(start):
            return None
        return self._trace_procedure(start)

    def _trace_procedure(self, entry: int) -> ProcedureCFG:
        """Symbolically trace out the CFG of the procedure entered at
        *entry* (§2.2.3): follow direct control flow, fall through calls,
        stop at returns and indirect jumps.

        Block boundaries are computed to a fixpoint: any address that is
        a branch target splits the block that would otherwise run through
        it, so blocks never overlap (overlap would corrupt the
        predominator relation the invariant scoping depends on)."""
        starts: set[int] = {entry}
        while True:
            new_starts: set[int] = set()
            for start in sorted(starts):
                if self.known_block(start) and start != entry:
                    continue
                block = decode_block(self.binary, start,
                                     stop_before=frozenset(starts))
                for target in block.successor_targets():
                    if 0 <= target < len(self.binary.code) and \
                            target not in starts:
                        new_starts.add(target)
            if not new_starts:
                break
            starts |= new_starts

        cfg = ProcedureCFG(entry=entry)
        for start in sorted(starts):
            if self.known_block(start) and start != entry:
                # Ran into another procedure's code: treat the boundary
                # as a procedure split (fission) and do not absorb it.
                self.fission_events += 1
                continue
            block = decode_block(self.binary, start,
                                 stop_before=frozenset(starts))
            cfg.add_block(block)
            for target in block.successor_targets():
                if 0 <= target < len(self.binary.code):
                    cfg.add_edge(start, target)
        self.procedures[entry] = cfg
        for pc in cfg.instruction_addresses():
            self._instruction_to_procedure.setdefault(pc, entry)
        self.version += 1
        return cfg


class DiscoveryPlugin(CachePlugin):
    """Feeds first-time block executions into a :class:`ProcedureDatabase`.

    Attach to a :class:`~repro.dynamo.code_cache.CodeCache` so procedure
    discovery rides along with ordinary execution, exactly as in the
    paper's implementation.
    """

    def __init__(self, database: ProcedureDatabase):
        self.database = database

    def on_block_build(self, cache: CodeCache, block: BasicBlock) -> None:
        self.database.observe_block_execution(block.start)

    def on_block_restore(self, cache: CodeCache,
                         block: BasicBlock) -> None:
        # A restored cache replays its blocks in discovery order;
        # observing them keeps the procedure database identical to the
        # one a cold sequence of builds would have produced (the
        # observation is idempotent for already-known blocks).
        self.database.observe_block_execution(block.start)


def discover_all_reachable(binary: Binary,
                           roots: list[int] | None = None
                           ) -> ProcedureDatabase:
    """Eagerly discover procedures reachable from *roots* via direct calls.

    A convenience for tests and offline analysis: starts at the entry point
    (or the given roots), traces each procedure, then recursively traces
    every direct call target.  Dynamic discovery during execution remains
    the authoritative mechanism; this helper just warms a database.
    """
    database = ProcedureDatabase(binary)
    worklist = list(roots) if roots else [binary.entry_point]
    while worklist:
        entry = worklist.pop()
        if database.known_block(entry):
            continue
        cfg = database.observe_block_execution(entry)
        if cfg is None:
            continue
        for block in cfg.blocks.values():
            target = block.call_target()
            if target is not None and not database.known_block(target):
                worklist.append(target)
            if block.terminator.opcode == Opcode.JMP and \
                    not database.known_block(block.terminator.a) and \
                    block.terminator.a not in cfg.blocks:
                worklist.append(block.terminator.a)
    return database
