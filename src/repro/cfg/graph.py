"""Procedure control flow graphs (§2.2.3).

Nodes are basic blocks; edges represent intra-procedure control flow.
Calls fall through (the callee belongs to a different procedure) and the
graph ends at returns and unresolvable indirect jumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.dominators import compute_dominators
from repro.dynamo.blocks import BasicBlock
from repro.vm.isa import INSTRUCTION_SIZE


@dataclass
class ProcedureCFG:
    """The control flow graph of one dynamically discovered procedure."""

    entry: int
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    edges: dict[int, list[int]] = field(default_factory=dict)
    _block_dominators: dict[int, set[int]] | None = None
    _instruction_block: dict[int, int] | None = None

    # -- construction -----------------------------------------------------

    def add_block(self, block: BasicBlock) -> None:
        self.blocks[block.start] = block
        self.edges.setdefault(block.start, [])
        self._invalidate()

    def add_edge(self, source: int, target: int) -> None:
        self.edges.setdefault(source, [])
        if target not in self.edges[source]:
            self.edges[source].append(target)
        self._invalidate()

    def _invalidate(self) -> None:
        self._block_dominators = None
        self._instruction_block = None

    # -- queries ------------------------------------------------------------

    def instruction_addresses(self) -> list[int]:
        """All instruction addresses in this procedure, sorted."""
        addresses: list[int] = []
        for block in self.blocks.values():
            addresses.extend(block.addresses())
        return sorted(set(addresses))

    def contains(self, pc: int) -> bool:
        """True if instruction *pc* belongs to this procedure."""
        return pc in self._instruction_map()

    def block_of(self, pc: int) -> BasicBlock | None:
        start = self._instruction_map().get(pc)
        return self.blocks.get(start) if start is not None else None

    def _instruction_map(self) -> dict[int, int]:
        if self._instruction_block is None:
            mapping: dict[int, int] = {}
            for block in self.blocks.values():
                for pc in block.addresses():
                    mapping.setdefault(pc, block.start)
            self._instruction_block = mapping
        return self._instruction_block

    def block_dominators(self) -> dict[int, set[int]]:
        """Block-start -> set of dominating block-starts (reflexive)."""
        if self._block_dominators is None:
            self._block_dominators = compute_dominators(
                self.entry,
                {start: [t for t in targets if t in self.blocks]
                 for start, targets in self.edges.items()})
        return self._block_dominators

    def predominators(self, pc: int) -> list[int]:
        """Instruction addresses that predominate *pc*, in address order.

        Includes *pc* itself (an instruction trivially "has executed" when
        control is at it, and ClearView checks invariants *at* the failing
        instruction too).
        """
        block = self.block_of(pc)
        if block is None:
            return []
        result: list[int] = []
        dominating_blocks = self.block_dominators().get(block.start, set())
        for start in dominating_blocks:
            dominating = self.blocks[start]
            if start == block.start:
                # Same block: instructions at or before pc.
                result.extend(addr for addr in dominating.addresses()
                              if addr <= pc)
            else:
                result.extend(dominating.addresses())
        return sorted(set(result))

    def predominates(self, i: int, j: int) -> bool:
        """True if instruction *i* predominates instruction *j*."""
        return i in self.predominators(j)

    def exit_pcs(self) -> list[int]:
        """Addresses of RET terminators (procedure exits)."""
        from repro.vm.isa import Opcode
        return [block.terminator_pc for block in self.blocks.values()
                if block.terminator.opcode == Opcode.RET]

    def __len__(self) -> int:
        return len(self.blocks)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"procedure @{self.entry:#x} "
                 f"({len(self.blocks)} blocks)"]
        for start in sorted(self.blocks):
            targets = ", ".join(f"{t:#x}" for t in self.edges.get(start, []))
            lines.append(f"  block {start:#x} -> [{targets}]")
        return "\n".join(lines)
