"""Dominator analysis over basic-block graphs.

ClearView needs *predominators* (§2.2.2, footnote 1): instruction ``i``
predominates ``j`` when every control-flow path to ``j`` first passes
through ``i`` — so at ``j``, the values computed at ``i`` are guaranteed
to be valid.  We compute block-level dominators with the classic iterative
dataflow algorithm and lift the result to instructions (within a block,
earlier instructions predominate later ones).
"""

from __future__ import annotations


def compute_dominators(entry: int,
                       successors: dict[int, list[int]]) -> dict[int, set[int]]:
    """Block-level dominator sets.

    Parameters
    ----------
    entry:
        The entry node (dominates everything, including itself).
    successors:
        Adjacency: node -> successor nodes.  Every node reachable from
        *entry* must appear as a key (possibly with an empty list).

    Returns
    -------
    dict mapping each reachable node to the set of nodes that dominate it
    (reflexive: every node dominates itself).
    """
    # Restrict to nodes reachable from the entry.
    reachable: set[int] = set()
    worklist = [entry]
    while worklist:
        node = worklist.pop()
        if node in reachable:
            continue
        reachable.add(node)
        worklist.extend(successors.get(node, []))

    predecessors: dict[int, list[int]] = {node: [] for node in reachable}
    for node in reachable:
        for successor in successors.get(node, []):
            if successor in reachable:
                predecessors[successor].append(node)

    dominators: dict[int, set[int]] = {
        node: set(reachable) for node in reachable}
    dominators[entry] = {entry}

    changed = True
    while changed:
        changed = False
        for node in reachable:
            if node == entry:
                continue
            preds = predecessors[node]
            if preds:
                new = set.intersection(*(dominators[p] for p in preds))
            else:
                # Unreachable-through-predecessors artifacts keep only
                # themselves plus the entry.
                new = {entry}
            new.add(node)
            if new != dominators[node]:
                dominators[node] = new
                changed = True
    return dominators


def strict_dominators(dominators: dict[int, set[int]]) -> dict[int, set[int]]:
    """Drop the reflexive element from each dominator set."""
    return {node: doms - {node} for node, doms in dominators.items()}


def natural_loops(entry: int,
                  successors: dict[int, list[int]]) -> dict[int, set[int]]:
    """Natural loops of the graph, keyed by loop header.

    A back edge is an edge ``u -> v`` where *v* dominates *u*; the
    natural loop of that edge is *v* plus every node that can reach *u*
    without passing through *v*.  Back edges sharing a header merge into
    one loop body.  Returns ``header -> body`` (the body includes the
    header).  Nodes unreachable from *entry* contribute nothing.
    """
    dominators = compute_dominators(entry, successors)
    predecessors: dict[int, list[int]] = {node: [] for node in dominators}
    for node in dominators:
        for successor in successors.get(node, []):
            if successor in dominators:
                predecessors[successor].append(node)

    loops: dict[int, set[int]] = {}
    for node, doms in dominators.items():
        for target in successors.get(node, []):
            if target not in doms:
                continue  # not a back edge
            header = target
            body = loops.setdefault(header, {header})
            # Walk backwards from the latch, stopping at the header.
            worklist = [node]
            while worklist:
                member = worklist.pop()
                if member in body:
                    continue
                body.add(member)
                worklist.extend(predecessors.get(member, []))
    return loops
