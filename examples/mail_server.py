"""ClearView protecting a second application: a mail server (§4.5).

The paper argues its Firefox results generalise to other server
applications. This example applies the identical ClearView pipeline —
no browser-specific configuration — to MailServe, a mail-server-like
program with two classic server defects:

- a subject-header length that can go negative and smash the stack;
- an attachment decoder that trusts the header's declared size.

Run:  python examples/mail_server.py
"""

from __future__ import annotations

from repro.apps.mailserver import (
    attach_overflow_exploit,
    build_mailserver,
    normal_messages,
    subject_smash_exploit,
)
from repro.core import ClearView, report_all, summarize
from repro.dynamo import EnvironmentConfig, ManagedEnvironment, Outcome
from repro.learning import learn


def drive(clearview: ClearView, name: str, page: bytes) -> None:
    print(f"\npresenting the {name} exploit:")
    for presentation in range(1, 10):
        result = clearview.run(page)
        print(f"  presentation {presentation}: {result.outcome.value}"
              + (f"  [{result.monitor}]"
                 if result.outcome is Outcome.FAILURE else ""))
        if result.outcome is Outcome.COMPLETED:
            break


def main() -> None:
    binary = build_mailserver()

    print("learning from ten legitimate mail sessions ...")
    model = learn(binary.stripped(), normal_messages())
    print(f"  model: {len(model.database)} invariants "
          f"({model.database.counts_by_kind()})")

    environment = ManagedEnvironment(binary.stripped(),
                                     EnvironmentConfig.full())
    clearview = ClearView(environment, model.database, model.procedures)

    drive(clearview, "subject-smash", subject_smash_exploit())
    drive(clearview, "attach-overflow", attach_overflow_exploit())

    print("\n" + summarize(clearview))

    print("\nthe patched server still serves legitimate mail:")
    reference = ManagedEnvironment(binary.stripped(),
                                   EnvironmentConfig.bare())
    identical = sum(
        1 for message in normal_messages()
        if clearview.run(message).output == reference.run(message).output)
    print(f"  {identical}/{len(normal_messages())} sessions "
          f"bit-identical to the unpatched server")

    print("\nmaintainer reports:")
    for report in report_all(clearview):
        print(report.format())
        print()


if __name__ == "__main__":
    main()
