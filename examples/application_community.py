"""An application community defending itself (paper §3).

Eight machines run WebBrowse. Learning is distributed — each member
traces an eighth of the application — and merged centrally. When two
members are attacked, ClearView generates a patch and the management
console pushes it to everyone: the other six become immune to an attack
they have never seen.

With ``--transport process`` every member runs in its own OS process
(the Determina node-manager split made real): invariants, patches, and
run results cross genuine pipes as JSON, and learning shards execute in
parallel across cores.

Run:  python examples/application_community.py [--transport process]
"""

from __future__ import annotations

import argparse

from repro.apps import build_browser, learning_pages
from repro.community import CommunityManager
from repro.dynamo import Outcome
from repro.redteam import exploit


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Application community walkthrough (§3)")
    parser.add_argument(
        "--transport", choices=("in-process", "process", "socket"),
        default="in-process",
        help="simulate members in-process (default), shard them "
             "across one OS process per member, or run them over the "
             "multi-host socket wire protocol")
    args = parser.parse_args()

    print(f"standing up a community of 8 machines "
          f"({args.transport} transport) ...")
    with CommunityManager(build_browser(), members=8,
                          transport=args.transport) as manager:
        print("distributed learning (round-robin procedure assignment):")
        report = manager.learn_distributed(learning_pages())
        for member, observations in zip(manager.members,
                                        report.per_node_observations):
            bar = "#" * max(1, observations // 400)
            print(f"  {member.name}: {observations:6d} observations {bar}")
        print(f"  merged model: {len(report.database)} invariants; "
              f"uploads totalled {report.upload_bytes} bytes "
              f"(invariants only — never raw traces)")

        manager.protect()
        attack = exploit("gc-collect")

        print("\nattacking the community (round-robin member exposure):")
        for presentation in range(1, 10):
            result = manager.attack(attack.page())
            exposed = manager.members[(presentation - 1)
                                      % len(manager.members)]
            print(f"  presentation {presentation} -> {exposed.name}: "
                  f"{result.outcome.value}")
            if result.outcome is Outcome.COMPLETED:
                break

        immune = manager.immune_members(attack.page())
        print(f"\nimmunity check: {immune}/{len(manager.members)} members "
              f"survive the exploit")
        attacked = min(presentation, len(manager.members))
        print(f"members ever exposed to the attack: {attacked}; "
              f"members immune without exposure: "
              f"{len(manager.members) - attacked}")

    print("\nparallel repair evaluation (a fresh community, mm-reuse-1):")
    with CommunityManager(build_browser(), members=4,
                          transport=args.transport) as parallel:
        parallel.learn_distributed(learning_pages())
        parallel.protect()
        nasty = exploit("mm-reuse-1")
        failure_pc = None
        for _ in range(3):
            result = parallel.attack(nasty.page())
            failure_pc = result.failure_pc or failure_pc
        rounds = parallel.evaluate_candidates_in_parallel(failure_pc,
                                                          nasty.page())
        print(f"  3 candidate repairs evaluated on distinct members in "
              f"{rounds} round (a single machine needs 3 sequential runs)")
        print(f"  immune members: "
              f"{parallel.immune_members(nasty.page())}/4")


if __name__ == "__main__":
    main()
