"""The maintainer's view: ClearView as a triage assistant (paper §1).

While ClearView's patch keeps the application alive, the maintainer gets
a report with the failure location, the correlated invariants, every
candidate repair strategy, and each repair's measured effectiveness —
the information §1 argues helps eliminate the underlying defect faster
than the industry-average 28 days.

This example drives the mm-reuse-1 exploit (the paper's 269095, where
two repairs fail before the third succeeds) and prints what the
maintainer would receive.

Run:  python examples/maintainer_workflow.py
"""

from __future__ import annotations

from repro.core import report_all
from repro.redteam import RedTeamExercise, exploit


def main() -> None:
    exercise = RedTeamExercise()
    exercise.prepare()

    print("attacking with the mm-reuse-1 exploit (Bugzilla 269095 "
          "analogue) ...")
    result = exercise.attack(exploit("mm-reuse-1"), max_presentations=10)
    print(f"patched after {result.survived_at} presentations; "
          f"{result.sessions[0].unsuccessful_runs} candidate repairs "
          f"failed along the way\n")

    for report in report_all(result.clearview):
        print(report.format())

    print("\nreading the report:")
    print("  - the failure location pinpoints the corrupted virtual")
    print("    call site in the stripped binary;")
    print("  - the highly correlated one-of invariant names the only")
    print("    function ever invoked there during normal runs;")
    print("  - the repair history shows that re-invoking the known")
    print("    target crashed (the object really is corrupt), skipping")
    print("    the call crashed (a consumer depends on its result), and")
    print("    returning early from the renderer is what the")
    print("    application tolerates - which tells the maintainer the")
    print("    object's initialisation path, not the call site, is the")
    print("    defect to fix (the paper's manual fix: flag reallocated")
    print("    objects and reinitialise them).")

    print("\nClearView event log for the session:")
    for event in result.clearview.events:
        print(f"  {event}")


if __name__ == "__main__":
    main()
