"""Quickstart: protect an application, attack it, watch ClearView patch it.

This walks the complete Figure 1 pipeline on a small program in about a
minute of reading:

1. assemble a vulnerable application (an unchecked function-pointer
   dispatch, the classic code-injection vector);
2. learn its normal behaviour from a few good inputs;
3. attack it — Memory Firewall blocks the attack and ClearView starts
   learning from the failure;
4. after four presentations the application *survives* the attack.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import struct

from repro.core import ClearView, report_all, summarize
from repro.dynamo import EnvironmentConfig, ManagedEnvironment, Outcome
from repro.learning import learn
from repro.vm import assemble
from repro.vm.memory import Memory

# A tiny server loop: the first input word selects a request handler from
# a function-pointer table. The defect: the handler index is never
# bounds-checked, so a hostile input can make the dispatch jump through
# attacker-controlled memory.
VULNERABLE_APP = """
.data
input_len: .word 0
input:     .space 64
handlers:  .word handle_get, handle_put, handle_del
.code
main:
    lea esi, [input]
    load eax, [esi+0]       ; requested handler index (UNCHECKED)
    lea edi, [handlers]
    mov ebx, eax
    mul ebx, 4
    add edi, ebx
    load edx, [edi+0]       ; function pointer
    callr edx               ; dispatch
    out eax
    halt
handle_get:
    mov eax, 100
    ret
handle_put:
    mov eax, 200
    ret
handle_del:
    mov eax, 300
    ret
"""


def request(index: int, extra: bytes = b"") -> bytes:
    return struct.pack("<I", index) + extra + b"\x00" * 8


def attack() -> bytes:
    """A request whose huge index makes the table lookup wrap around and
    read a "function pointer" out of the input buffer itself — which the
    attacker filled with the address of their payload.

    Address arithmetic (the attacker knows the layout; no ASLR): the
    ``handlers`` table sits 64 bytes past the start of the input buffer,
    so index -15 makes ``handlers + 4*index`` land on ``input + 4`` —
    the first word of the request body, which the attacker set to the
    address of the payload word that follows it.
    """
    payload_address = Memory.DATA_BASE + 4 + 8  # the 0x90909090 word
    return request((1 << 32) - 15,
                   struct.pack("<II", payload_address, 0x90909090))


def main() -> None:
    binary = assemble(VULNERABLE_APP)

    # -- 1. verify the exploit works on the unprotected application ----
    bare = ManagedEnvironment(binary.stripped(), EnvironmentConfig.bare())
    result = bare.run(attack())
    print(f"unprotected run:  {result.outcome.value}  ({result.detail})")
    assert result.outcome is Outcome.COMPROMISED

    # -- 2. learn normal behaviour --------------------------------------
    print("\nlearning from normal requests ...")
    learned = learn(binary, [request(0), request(1), request(2),
                             request(0), request(1)])
    print(f"  model: {len(learned.database)} invariants "
          f"({learned.database.counts_by_kind()})")

    # -- 3. protect and attack repeatedly -------------------------------
    environment = ManagedEnvironment(binary.stripped(),
                                     EnvironmentConfig.full())
    clearview = ClearView(environment, learned.database,
                          learned.procedures)

    print("\npresenting the exploit until ClearView finds a patch:")
    for presentation in range(1, 10):
        result = clearview.run(attack())
        print(f"  presentation {presentation}: {result.outcome.value}")
        if result.outcome is Outcome.COMPLETED:
            break

    # -- 4. the patched application works, on attacks and legit input --
    print("\n" + summarize(clearview))
    for index, expected in ((0, 100), (1, 200), (2, 300)):
        output = clearview.run(request(index)).output
        assert output == [expected]
    print("legitimate requests still answered correctly: "
          "100 / 200 / 300")

    print("\nmaintainer report:")
    for report in report_all(clearview):
        print(report.format())


if __name__ == "__main__":
    main()
