"""The full Red Team exercise against WebBrowse (paper §4).

Reproduces the complete evaluation: all ten exploits presented to the
protected browser, Table 1 regenerated, the §4.3.2 reconfiguration
stories demonstrated, and the false-positive / repair-quality checks.

Run:  python examples/red_team_exercise.py
"""

from __future__ import annotations

from repro.redteam import RedTeamExercise, all_exploits, exploit


def main() -> None:
    print("preparing: learning WebBrowse's normal behaviour "
          "(12-page suite) ...")
    exercise = RedTeamExercise()
    learned = exercise.prepare()
    print(f"  {len(learned.database)} invariants over "
          f"{len(learned.procedures.procedures)} procedures\n")

    print("single-variant attacks (Table 1):")
    print(f"  {'Bugzilla':9s} {'defect':14s} {'error type':28s} "
          f"{'presentations':14s} outcome")
    for item in all_exploits():
        per_defect = exercise._for_defect(item)
        result = per_defect.attack(item, max_presentations=20)
        presentations = result.survived_at or "-"
        outcome = "patched" if result.patched else \
            "blocked (no patch)"
        notes = []
        if item.defect.needs_stack_procedures > 1:
            notes.append("needs stack-procedures=2")
        if item.defect.needs_expanded_learning:
            notes.append("needs expanded learning")
        suffix = f"  [{', '.join(notes)}]" if notes else ""
        print(f"  {item.bugzilla:9s} {item.defect_id:14s} "
              f"{item.defect.error_type:28s} {str(presentations):14s} "
              f"{outcome}{suffix}")

    print("\nreconfiguration stories (§4.3.2):")
    restricted = RedTeamExercise()
    restricted.prepare()
    for defect_id in ("gif-sign", "int-overflow"):
        result = restricted.attack(exploit(defect_id),
                                   max_presentations=8)
        print(f"  {defect_id} under the Red Team config: "
              f"{'patched' if result.patched else 'blocked, NOT patched'}"
              f" (attacks blocked: {result.all_blocked})")

    print("\nfalse-positive evaluation (57 legitimate pages):")
    sessions, comparison = exercise.false_positive_test()
    print(f"  patches generated: {sessions}   displays identical: "
          f"{comparison.identical}/{comparison.pages}")

    print("\nrepair-quality evaluation (patched browser vs unpatched):")
    patched = exercise.attack(exploit("js-type-1"))
    displays = exercise.verify_patched_displays(patched.clearview)
    print(f"  displays identical: {displays.identical}/{displays.pages}")


if __name__ == "__main__":
    main()
